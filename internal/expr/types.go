// Package expr defines the typed expression language at the heart of
// TRANSIT: the value domains (Bool, Int, PID, Set, Enum), the expression
// AST, the Table 1 vocabulary of function symbols used for cache-coherence
// protocols, and evaluation semantics shared by the enumerative synthesizer,
// the SMT encoder, and the EFSM runtime.
//
// The semantics are deliberately finite so that the synthesis problem is
// decidable by the bundled finite-domain SMT solver: PIDs range over the
// cache identifiers of a Universe, Sets are subsets of PIDs, Enums are
// finite, and Ints are W-bit two's-complement integers with wrapping
// arithmetic (W is per-Universe, default 8).
package expr

import "fmt"

// Kind enumerates the base type constructors of the TRANSIT vocabulary.
type Kind uint8

const (
	// KindBool is the Boolean type.
	KindBool Kind = iota
	// KindInt is the bounded integer type (W-bit two's complement).
	KindInt
	// KindPID is the process-identifier type, ranging over cache IDs.
	KindPID
	// KindSet is the type of sets of PIDs.
	KindSet
	// KindEnum is the kind of user-declared enumerated types.
	KindEnum
)

func (k Kind) String() string {
	switch k {
	case KindBool:
		return "Bool"
	case KindInt:
		return "Int"
	case KindPID:
		return "PID"
	case KindSet:
		return "Set"
	case KindEnum:
		return "Enum"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// EnumType describes a user-declared enumerated type such as a message-type
// or control-state enumeration. EnumTypes are identified by pointer; declare
// them through Universe.DeclareEnum so each carries a stable ID used in
// signature encoding and SMT variable layout.
type EnumType struct {
	Name   string
	Values []string
	id     int
}

// ID reports the Universe-assigned identity of the enum type.
func (e *EnumType) ID() int { return e.id }

// Ord returns the ordinal of the named value, or -1 if absent.
func (e *EnumType) Ord(name string) int {
	for i, v := range e.Values {
		if v == name {
			return i
		}
	}
	return -1
}

// Type is a TRANSIT type: one of the base kinds, with Enum set for
// enumerated types. Type is comparable and can be used as a map key.
type Type struct {
	Kind Kind
	Enum *EnumType // non-nil iff Kind == KindEnum
}

// The four built-in types.
var (
	BoolType = Type{Kind: KindBool}
	IntType  = Type{Kind: KindInt}
	PIDType  = Type{Kind: KindPID}
	SetType  = Type{Kind: KindSet}
)

// EnumOf returns the Type for a declared enum type.
func EnumOf(e *EnumType) Type { return Type{Kind: KindEnum, Enum: e} }

func (t Type) String() string {
	if t.Kind == KindEnum {
		if t.Enum == nil {
			return "Enum(?)"
		}
		return t.Enum.Name
	}
	return t.Kind.String()
}

// Universe fixes the finite carrier sets for one protocol instance: the
// number of caches (the PID domain and hence the Set domain), the integer
// width, and the declared enumerated types. Every component of the system —
// evaluator, SMT encoder, synthesizer, model checker — interprets values
// relative to the same Universe so that concrete and symbolic semantics
// coincide.
type Universe struct {
	numCaches int
	intWidth  uint
	enums     []*EnumType
	enumByN   map[string]*EnumType
}

// DefaultIntWidth is the integer bit-width used by NewUniverse.
const DefaultIntWidth = 8

// NewUniverse creates a Universe with numCaches PIDs and the default
// integer width. numCaches must be in [1, 64] (Sets are 64-bit masks).
func NewUniverse(numCaches int) *Universe {
	u, err := NewUniverseWidth(numCaches, DefaultIntWidth)
	if err != nil {
		panic(err)
	}
	return u
}

// NewUniverseWidth creates a Universe with an explicit integer bit-width in
// [2, 32].
func NewUniverseWidth(numCaches int, intWidth uint) (*Universe, error) {
	if numCaches < 1 || numCaches > 64 {
		return nil, fmt.Errorf("expr: numCaches %d out of range [1,64]", numCaches)
	}
	if intWidth < 2 || intWidth > 32 {
		return nil, fmt.Errorf("expr: intWidth %d out of range [2,32]", intWidth)
	}
	return &Universe{
		numCaches: numCaches,
		intWidth:  intWidth,
		enumByN:   make(map[string]*EnumType),
	}, nil
}

// NumCaches reports the size of the PID domain.
func (u *Universe) NumCaches() int { return u.numCaches }

// IntWidth reports the integer bit-width W.
func (u *Universe) IntWidth() uint { return u.intWidth }

// MinInt is the smallest representable integer, -2^(W-1).
func (u *Universe) MinInt() int64 { return -(int64(1) << (u.intWidth - 1)) }

// MaxInt is the largest representable integer, 2^(W-1)-1.
func (u *Universe) MaxInt() int64 { return (int64(1) << (u.intWidth - 1)) - 1 }

// WrapInt reduces x to W-bit two's-complement range.
func (u *Universe) WrapInt(x int64) int64 {
	mask := (int64(1) << u.intWidth) - 1
	x &= mask
	if x > u.MaxInt() {
		x -= int64(1) << u.intWidth
	}
	return x
}

// SetMask is the bitmask of the full PID set.
func (u *Universe) SetMask() uint64 {
	if u.numCaches == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << u.numCaches) - 1
}

// DeclareEnum registers a new enumerated type. Names must be unique within
// the Universe and an enum must have at least one value.
func (u *Universe) DeclareEnum(name string, values ...string) (*EnumType, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("expr: enum %s has no values", name)
	}
	if _, dup := u.enumByN[name]; dup {
		return nil, fmt.Errorf("expr: enum %s already declared", name)
	}
	seen := make(map[string]bool, len(values))
	for _, v := range values {
		if seen[v] {
			return nil, fmt.Errorf("expr: enum %s has duplicate value %s", name, v)
		}
		seen[v] = true
	}
	e := &EnumType{Name: name, Values: append([]string(nil), values...), id: len(u.enums)}
	u.enums = append(u.enums, e)
	u.enumByN[name] = e
	return e, nil
}

// MustDeclareEnum is DeclareEnum that panics on error; convenient in
// protocol constructors where enum sets are static.
func (u *Universe) MustDeclareEnum(name string, values ...string) *EnumType {
	e, err := u.DeclareEnum(name, values...)
	if err != nil {
		panic(err)
	}
	return e
}

// Enum looks up a declared enum type by name.
func (u *Universe) Enum(name string) (*EnumType, bool) {
	e, ok := u.enumByN[name]
	return e, ok
}

// Enums returns the declared enum types in declaration order.
func (u *Universe) Enums() []*EnumType { return u.enums }

// DomainSize reports the number of distinct values of type t in this
// Universe. It is the exhaustive-search bound used by the reference SMT
// solver and by property tests.
func (u *Universe) DomainSize(t Type) uint64 {
	switch t.Kind {
	case KindBool:
		return 2
	case KindInt:
		return uint64(1) << u.intWidth
	case KindPID:
		return uint64(u.numCaches)
	case KindSet:
		return uint64(1) << u.numCaches
	case KindEnum:
		return uint64(len(t.Enum.Values))
	}
	return 0
}
