package expr

import (
	"fmt"
	"math/rand"
)

// Random generation of values, environments, and expressions. The Figure 5
// experiment benchmarks SolveConcrete on randomly generated target
// expressions of exact sizes with randomly drawn consistent example sets;
// property-based tests reuse the same generators.

// RandomValue draws a uniform value of type t.
func RandomValue(u *Universe, rng *rand.Rand, t Type) Value {
	switch t.Kind {
	case KindBool:
		return BoolVal(rng.Intn(2) == 0)
	case KindInt:
		span := u.MaxInt() - u.MinInt() + 1
		return IntVal(u, u.MinInt()+rng.Int63n(span))
	case KindPID:
		return PIDVal(rng.Intn(u.NumCaches()))
	case KindSet:
		return SetVal(rng.Uint64() & u.SetMask())
	case KindEnum:
		return EnumVal(t.Enum, rng.Intn(len(t.Enum.Values)))
	}
	panic("expr: RandomValue on invalid type")
}

// RandomEnv draws a uniform environment for the given variables.
func RandomEnv(u *Universe, rng *rand.Rand, vars []*Var) Env {
	env := make(Env, len(vars))
	for _, v := range vars {
		env[v.Name] = RandomValue(u, rng, v.VT)
	}
	return env
}

// RandomExpr generates a random expression of exactly the given size and
// type over the vocabulary and variables. It returns an error when no
// expression of that size and type exists (e.g. size 1 with no variable or
// constant of the type).
func RandomExpr(u *Universe, rng *rand.Rand, voc *Vocabulary, vars []*Var, t Type, size int) (Expr, error) {
	g := &randGen{u: u, rng: rng, voc: voc, vars: vars, feasible: map[feasKey]bool{}}
	if !g.canBuild(t, size) {
		return nil, fmt.Errorf("expr: no expression of type %s and size %d exists", t, size)
	}
	return g.build(t, size), nil
}

type feasKey struct {
	t    Type
	size int
}

type randGen struct {
	u        *Universe
	rng      *rand.Rand
	voc      *Vocabulary
	vars     []*Var
	feasible map[feasKey]bool
}

// canBuild memoizes whether any expression of (t, size) exists.
func (g *randGen) canBuild(t Type, size int) bool {
	if size < 1 {
		return false
	}
	key := feasKey{t, size}
	if v, ok := g.feasible[key]; ok {
		return v
	}
	// Break cycles pessimistically during computation; the recursion is on
	// strictly smaller sizes for arguments, so only the same-size key can
	// recur, and only via arity >= 1 functions which always shrink.
	g.feasible[key] = false
	ok := false
	if size == 1 {
		for _, v := range g.vars {
			if v.VT == t {
				ok = true
				break
			}
		}
		if !ok {
			for _, f := range g.voc.Funcs() {
				if f.Arity() == 0 && f.Ret == t {
					ok = true
					break
				}
			}
		}
	} else {
		for _, f := range g.voc.Funcs() {
			if f.Ret != t || f.Arity() == 0 {
				continue
			}
			if g.canPartition(f.Params, size-1) {
				ok = true
				break
			}
		}
	}
	g.feasible[key] = ok
	return ok
}

// canPartition reports whether budget can be split across the parameter
// types with every share >= 1 and each share buildable.
func (g *randGen) canPartition(params []Type, budget int) bool {
	if len(params) == 0 {
		return budget == 0
	}
	if budget < len(params) {
		return false
	}
	head, rest := params[0], params[1:]
	maxHead := budget - len(rest)
	for s := 1; s <= maxHead; s++ {
		if g.canBuild(head, s) && g.canPartition(rest, budget-s) {
			return true
		}
	}
	return false
}

func (g *randGen) build(t Type, size int) Expr {
	if size == 1 {
		var leaves []Expr
		for _, v := range g.vars {
			if v.VT == t {
				leaves = append(leaves, v)
			}
		}
		for _, f := range g.voc.Funcs() {
			if f.Arity() == 0 && f.Ret == t {
				leaves = append(leaves, NewApply(f))
			}
		}
		return leaves[g.rng.Intn(len(leaves))]
	}
	var fns []*Func
	for _, f := range g.voc.Funcs() {
		if f.Ret == t && f.Arity() > 0 && g.canPartition(f.Params, size-1) {
			fns = append(fns, f)
		}
	}
	f := fns[g.rng.Intn(len(fns))]
	shares := g.pickPartition(f.Params, size-1)
	args := make([]Expr, len(f.Params))
	for i, p := range f.Params {
		args[i] = g.build(p, shares[i])
	}
	return NewApply(f, args...)
}

// pickPartition draws a uniform-ish feasible split of budget across params.
func (g *randGen) pickPartition(params []Type, budget int) []int {
	shares := make([]int, len(params))
	for i := range params {
		rest := params[i+1:]
		var options []int
		maxHere := budget - len(rest)
		for s := 1; s <= maxHere; s++ {
			if g.canBuild(params[i], s) && g.canPartition(rest, budget-s) {
				options = append(options, s)
			}
		}
		pick := options[g.rng.Intn(len(options))]
		shares[i] = pick
		budget -= pick
	}
	return shares
}
