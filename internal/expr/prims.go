package expr

import (
	"fmt"
	"math/bits"
	"sync"
)

// Canonical Func instances for the Table 1 vocabulary. The SMT encoder
// dispatches on function name and parameter types, so all components must
// build expressions from these shared symbols (directly or through the
// builder helpers) to stay within the encodable fragment.
var (
	// FnAdd is integer addition (wrapping).
	FnAdd = &Func{Name: "add", Params: []Type{IntType, IntType}, Ret: IntType,
		Apply: func(u *Universe, a []Value) Value { return IntVal(u, a[0].Int()+a[1].Int()) }}
	// FnSub is integer subtraction (wrapping).
	FnSub = &Func{Name: "sub", Params: []Type{IntType, IntType}, Ret: IntType,
		Apply: func(u *Universe, a []Value) Value { return IntVal(u, a[0].Int()-a[1].Int()) }}
	// FnInc adds one to an integer.
	FnInc = &Func{Name: "inc", Params: []Type{IntType}, Ret: IntType,
		Apply: func(u *Universe, a []Value) Value { return IntVal(u, a[0].Int()+1) }}
	// FnDec subtracts one from an integer.
	FnDec = &Func{Name: "dec", Params: []Type{IntType}, Ret: IntType,
		Apply: func(u *Universe, a []Value) Value { return IntVal(u, a[0].Int()-1) }}
	// FnSetAdd inserts a PID into a set.
	FnSetAdd = &Func{Name: "setadd", Params: []Type{SetType, PIDType}, Ret: SetType,
		Apply: func(u *Universe, a []Value) Value { return SetVal(a[0].Set() | 1<<uint(a[1].PID())) }}
	// FnSetSize is set cardinality.
	FnSetSize = &Func{Name: "setsize", Params: []Type{SetType}, Ret: IntType,
		Apply: func(u *Universe, a []Value) Value { return IntVal(u, int64(bits.OnesCount64(a[0].Set()))) }}
	// FnSetUnion is set union.
	FnSetUnion = &Func{Name: "setunion", Params: []Type{SetType, SetType}, Ret: SetType,
		Apply: func(u *Universe, a []Value) Value { return SetVal(a[0].Set() | a[1].Set()) }}
	// FnSetInter is set intersection.
	FnSetInter = &Func{Name: "setinter", Params: []Type{SetType, SetType}, Ret: SetType,
		Apply: func(u *Universe, a []Value) Value { return SetVal(a[0].Set() & a[1].Set()) }}
	// FnSetMinus is set difference.
	FnSetMinus = &Func{Name: "setminus", Params: []Type{SetType, SetType}, Ret: SetType,
		Apply: func(u *Universe, a []Value) Value { return SetVal(a[0].Set() &^ a[1].Set()) }}
	// FnSetOf makes a singleton set.
	FnSetOf = &Func{Name: "setof", Params: []Type{PIDType}, Ret: SetType,
		Apply: func(u *Universe, a []Value) Value { return SetVal(1 << uint(a[0].PID())) }}
	// FnSetContains is the set-membership test.
	FnSetContains = &Func{Name: "setcontains", Params: []Type{SetType, PIDType}, Ret: BoolType,
		Apply: func(u *Universe, a []Value) Value { return BoolVal(a[0].Set()&(1<<uint(a[1].PID())) != 0) }}
	// FnAnd is Boolean conjunction.
	FnAnd = &Func{Name: "and", Params: []Type{BoolType, BoolType}, Ret: BoolType,
		Apply: func(u *Universe, a []Value) Value { return BoolVal(a[0].Bool() && a[1].Bool()) }}
	// FnOr is Boolean disjunction.
	FnOr = &Func{Name: "or", Params: []Type{BoolType, BoolType}, Ret: BoolType,
		Apply: func(u *Universe, a []Value) Value { return BoolVal(a[0].Bool() || a[1].Bool()) }}
	// FnNot is Boolean negation.
	FnNot = &Func{Name: "not", Params: []Type{BoolType}, Ret: BoolType,
		Apply: func(u *Universe, a []Value) Value { return BoolVal(!a[0].Bool()) }}
	// FnIsZero tests an integer for zero.
	FnIsZero = &Func{Name: "iszero", Params: []Type{IntType}, Ret: BoolType,
		Apply: func(u *Universe, a []Value) Value { return BoolVal(a[0].Int() == 0) }}
	// FnGe is signed greater-or-equal.
	FnGe = &Func{Name: "ge", Params: []Type{IntType, IntType}, Ret: BoolType,
		Apply: func(u *Universe, a []Value) Value { return BoolVal(a[0].Int() >= a[1].Int()) }}
	// FnGt is signed greater-than.
	FnGt = &Func{Name: "gt", Params: []Type{IntType, IntType}, Ret: BoolType,
		Apply: func(u *Universe, a []Value) Value { return BoolVal(a[0].Int() > a[1].Int()) }}
	// FnNumCaches is the constant number of caches in the universe.
	FnNumCaches = &Func{Name: "numcaches", Params: nil, Ret: IntType,
		Apply: func(u *Universe, _ []Value) Value { return IntVal(u, int64(u.NumCaches())) }}
	// FnZero and FnOne are the vocabulary's integer constants; other
	// integer constants are abbreviations (2 = add(1,1), per the paper's
	// footnote).
	FnZero = &Func{Name: "0", Params: nil, Ret: IntType,
		Apply: func(u *Universe, _ []Value) Value { return IntVal(u, 0) }}
	FnOne = &Func{Name: "1", Params: nil, Ret: IntType,
		Apply: func(u *Universe, _ []Value) Value { return IntVal(u, 1) }}
	// FnTrue and FnFalse are the Boolean constants.
	FnTrue = &Func{Name: "true", Params: nil, Ret: BoolType,
		Apply: func(u *Universe, _ []Value) Value { return BoolVal(true) }}
	FnFalse = &Func{Name: "false", Params: nil, Ret: BoolType,
		Apply: func(u *Universe, _ []Value) Value { return BoolVal(false) }}
	// FnEmptySet is the empty-set constant.
	FnEmptySet = &Func{Name: "emptyset", Params: nil, Ret: SetType,
		Apply: func(u *Universe, _ []Value) Value { return SetVal(0) }}
)

var (
	genericMu sync.Mutex
	equalsFns = map[Type]*Func{}
	iteFns    = map[Type]*Func{}
	enumLits  = map[Value]*Func{}
	pidLits   = map[int]*Func{}
)

// EqualsFn returns the equals overload for type t (∀t: equals(t,t)→Bool).
// Instances are shared so that structural expression equality works across
// call sites.
func EqualsFn(t Type) *Func {
	genericMu.Lock()
	defer genericMu.Unlock()
	if f, ok := equalsFns[t]; ok {
		return f
	}
	f := &Func{Name: "equals", Params: []Type{t, t}, Ret: BoolType,
		Apply: func(u *Universe, a []Value) Value { return BoolVal(a[0] == a[1]) }}
	equalsFns[t] = f
	return f
}

// IteFn returns the conditional overload for type t (∀t: ite(Bool,t,t)→t).
func IteFn(t Type) *Func {
	genericMu.Lock()
	defer genericMu.Unlock()
	if f, ok := iteFns[t]; ok {
		return f
	}
	f := &Func{Name: "ite", Params: []Type{BoolType, t, t}, Ret: t,
		Apply: func(u *Universe, a []Value) Value {
			if a[0].Bool() {
				return a[1]
			}
			return a[2]
		}}
	iteFns[t] = f
	return f
}

// EnumLitFn returns the arity-0 symbol for one enum literal.
func EnumLitFn(e *EnumType, ord int) *Func {
	v := EnumVal(e, ord)
	genericMu.Lock()
	defer genericMu.Unlock()
	if f, ok := enumLits[v]; ok {
		return f
	}
	f := &Func{Name: e.Values[ord], Params: nil, Ret: EnumOf(e),
		Apply: func(u *Universe, _ []Value) Value { return v }}
	enumLits[v] = f
	return f
}

// PIDLitFn returns the arity-0 symbol for a concrete PID constant (C0,
// C1, ...). These are available to snippets and examples; whether they join
// the enumeration vocabulary is a CoherenceOptions choice.
func PIDLitFn(p int) *Func {
	genericMu.Lock()
	defer genericMu.Unlock()
	if f, ok := pidLits[p]; ok {
		return f
	}
	f := &Func{Name: fmt.Sprintf("C%d", p), Params: nil, Ret: PIDType,
		Apply: func(u *Universe, _ []Value) Value { return PIDVal(p) }}
	pidLits[p] = f
	return f
}
