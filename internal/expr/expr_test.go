package expr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniverseBounds(t *testing.T) {
	u := NewUniverse(4)
	if u.NumCaches() != 4 {
		t.Fatalf("NumCaches = %d", u.NumCaches())
	}
	if u.IntWidth() != DefaultIntWidth {
		t.Fatalf("IntWidth = %d", u.IntWidth())
	}
	if u.MinInt() != -128 || u.MaxInt() != 127 {
		t.Fatalf("int range [%d, %d]", u.MinInt(), u.MaxInt())
	}
	if u.SetMask() != 0xF {
		t.Fatalf("SetMask = %x", u.SetMask())
	}
}

func TestUniverseValidation(t *testing.T) {
	if _, err := NewUniverseWidth(0, 8); err == nil {
		t.Error("expected error for 0 caches")
	}
	if _, err := NewUniverseWidth(65, 8); err == nil {
		t.Error("expected error for 65 caches")
	}
	if _, err := NewUniverseWidth(4, 1); err == nil {
		t.Error("expected error for width 1")
	}
	if _, err := NewUniverseWidth(4, 33); err == nil {
		t.Error("expected error for width 33")
	}
}

func TestWrapInt(t *testing.T) {
	u := NewUniverse(2)
	cases := []struct{ in, want int64 }{
		{0, 0}, {127, 127}, {128, -128}, {-128, -128}, {-129, 127},
		{255, -1}, {256, 0}, {-256, 0}, {300, 44},
	}
	for _, c := range cases {
		if got := u.WrapInt(c.in); got != c.want {
			t.Errorf("WrapInt(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestDeclareEnum(t *testing.T) {
	u := NewUniverse(2)
	e, err := u.DeclareEnum("MsgType", "GetS", "GetM", "Data")
	if err != nil {
		t.Fatal(err)
	}
	if e.Ord("GetM") != 1 || e.Ord("nope") != -1 {
		t.Errorf("Ord results wrong")
	}
	if _, err := u.DeclareEnum("MsgType", "X"); err == nil {
		t.Error("expected duplicate-name error")
	}
	if _, err := u.DeclareEnum("Empty"); err == nil {
		t.Error("expected empty-enum error")
	}
	if _, err := u.DeclareEnum("Dup", "A", "A"); err == nil {
		t.Error("expected duplicate-value error")
	}
	got, ok := u.Enum("MsgType")
	if !ok || got != e {
		t.Error("Enum lookup failed")
	}
}

func TestValueBasics(t *testing.T) {
	u := NewUniverse(4)
	if !BoolVal(true).Bool() || BoolVal(false).Bool() {
		t.Error("BoolVal broken")
	}
	if IntVal(u, 130).Int() != -126 {
		t.Errorf("IntVal should wrap: got %d", IntVal(u, 130).Int())
	}
	if PIDVal(3).PID() != 3 {
		t.Error("PIDVal broken")
	}
	if SetOf(0, 2).Set() != 0b101 {
		t.Error("SetOf broken")
	}
	if SetSize(SetOf(0, 1, 3)) != 3 {
		t.Error("SetSize broken")
	}
	e := u.MustDeclareEnum("E", "A", "B")
	if EnumValOf(e, "B").EnumOrd() != 1 {
		t.Error("EnumValOf broken")
	}
}

func TestValueString(t *testing.T) {
	u := NewUniverse(4)
	e := u.MustDeclareEnum("St", "I", "S", "M")
	cases := []struct {
		v    Value
		want string
	}{
		{BoolVal(true), "true"},
		{IntVal(u, -5), "-5"},
		{PIDVal(2), "C2"},
		{SetVal(0), "{}"},
		{SetOf(0, 2), "{C0, C2}"},
		{EnumValOf(e, "M"), "M"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestValueEncodingInjective(t *testing.T) {
	u := NewUniverse(3)
	e1 := u.MustDeclareEnum("E1", "A", "B")
	e2 := u.MustDeclareEnum("E2", "A", "B")
	var all []Value
	for _, typ := range []Type{BoolType, IntType, PIDType, SetType, EnumOf(e1), EnumOf(e2)} {
		all = append(all, ValuesOf(u, typ)...)
	}
	seen := map[string]Value{}
	for _, v := range all {
		key := string(v.AppendEncoding(nil))
		if prev, dup := seen[key]; dup {
			t.Fatalf("encoding collision: %v (%s) and %v (%s)", prev, prev.Type(), v, v.Type())
		}
		seen[key] = v
	}
	// Fixed-size records keep concatenation injective.
	if len(BoolVal(true).AppendEncoding(nil)) != len(SetOf(1, 2).AppendEncoding(nil)) {
		t.Error("encodings are not fixed-size")
	}
}

func TestValuesOfCounts(t *testing.T) {
	u := NewUniverse(3)
	e := u.MustDeclareEnum("E", "A", "B", "C")
	for _, tc := range []struct {
		t Type
		n int
	}{
		{BoolType, 2}, {IntType, 256}, {PIDType, 3}, {SetType, 8}, {EnumOf(e), 3},
	} {
		vals := ValuesOf(u, tc.t)
		if len(vals) != tc.n {
			t.Errorf("ValuesOf(%s) = %d values, want %d", tc.t, len(vals), tc.n)
		}
		if uint64(len(vals)) != u.DomainSize(tc.t) {
			t.Errorf("DomainSize(%s) mismatch", tc.t)
		}
		seen := map[Value]bool{}
		for _, v := range vals {
			if seen[v] {
				t.Errorf("ValuesOf(%s) has duplicates", tc.t)
			}
			seen[v] = true
		}
	}
}

func TestEvalVocabulary(t *testing.T) {
	u := NewUniverse(4)
	env := Env{
		"x": IntVal(u, 5),
		"y": IntVal(u, 3),
		"s": SetOf(0, 1),
		"r": SetOf(1, 2),
		"p": PIDVal(2),
		"b": BoolVal(true),
	}
	x, y := V("x", IntType), V("y", IntType)
	s, r := V("s", SetType), V("r", SetType)
	p := V("p", PIDType)
	b := V("b", BoolType)

	cases := []struct {
		e    Expr
		want Value
	}{
		{Add(x, y), IntVal(u, 8)},
		{Sub(x, y), IntVal(u, 2)},
		{Inc(x), IntVal(u, 6)},
		{Dec(y), IntVal(u, 2)},
		{SetAdd(s, p), SetOf(0, 1, 2)},
		{Card(s), IntVal(u, 2)},
		{SetUnion(s, r), SetOf(0, 1, 2)},
		{SetInter(s, r), SetOf(1)},
		{SetMinus(s, r), SetOf(0)},
		{Singleton(p), SetOf(2)},
		{SetContains(s, p), BoolVal(false)},
		{And(b, BoolC(false)), BoolVal(false)},
		{Or(BoolC(false), b), BoolVal(true)},
		{Not(b), BoolVal(false)},
		{IsZero(Sub(x, x)), BoolVal(true)},
		{Ge(x, y), BoolVal(true)},
		{Gt(y, x), BoolVal(false)},
		{Lt(y, x), BoolVal(true)},
		{Le(x, x), BoolVal(true)},
		{Eq(x, Add(y, IntC(u, 2))), BoolVal(true)},
		{Neq(x, y), BoolVal(true)},
		{Ite(Gt(x, y), x, y), IntVal(u, 5)},
		{Ite(Gt(y, x), x, y), IntVal(u, 3)},
		{NumCaches(), IntVal(u, 4)},
		{Implies(BoolC(false), BoolC(false)), BoolVal(true)},
		{SubsetEq(SetInter(s, r), s), BoolVal(true)},
		{SubsetEq(r, s), BoolVal(false)},
		{EmptySet(), SetVal(0)},
		{True(), BoolVal(true)},
		{False(), BoolVal(false)},
	}
	for _, c := range cases {
		if got := c.e.Eval(u, env); got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestEvalWrapping(t *testing.T) {
	u := NewUniverse(2)
	env := Env{"x": IntVal(u, 127)}
	x := V("x", IntType)
	if got := Inc(x).Eval(u, env); got.Int() != -128 {
		t.Errorf("inc(127) = %d, want -128", got.Int())
	}
	if got := Add(x, x).Eval(u, env); got.Int() != -2 {
		t.Errorf("add(127,127) = %d, want -2", got.Int())
	}
}

func TestSize(t *testing.T) {
	u := NewUniverse(2)
	x, y := V("x", IntType), V("y", IntType)
	e := Ite(Gt(x, y), x, y) // ite, gt, x, y, x, y = 6 symbols
	if e.Size() != 6 {
		t.Errorf("Size = %d, want 6", e.Size())
	}
	if x.Size() != 1 || IntC(u, 3).Size() != 1 {
		t.Error("leaf sizes wrong")
	}
}

func TestStringForm(t *testing.T) {
	x, y := V("a", IntType), V("b", IntType)
	e := Ite(Gt(x, y), x, y)
	if got := e.String(); got != "ite(gt(a, b), a, b)" {
		t.Errorf("String = %q", got)
	}
}

func TestPretty(t *testing.T) {
	u := NewUniverse(4)
	e := u.MustDeclareEnum("MT", "READ", "WRITE")
	sharers := V("Sharers", SetType)
	sender := V("Sender", PIDType)
	mt := V("MType", EnumOf(e))
	cases := []struct {
		e    Expr
		want string
	}{
		{SetAdd(sharers, sender), "setadd(Sharers, Sender)"},
		{Eq(mt, EnumC(e, "READ")), "MType = READ"},
		{And(Eq(mt, EnumC(e, "READ")), Neq(sender, PIDC(1))), "MType = READ & Sender != C1"},
		{Or(Not(V("g", BoolType)), V("h", BoolType)), "!g | h"},
		{Gt(Add(V("x", IntType), IntC(u, 1)), V("y", IntType)), "x + 1 > y"},
		{Singleton(sender), "{Sender}"},
		{Sub(V("x", IntType), Sub(V("y", IntType), V("z", IntType))), "x - (y - z)"},
		{And(Or(V("g", BoolType), V("h", BoolType)), V("k", BoolType)), "(g | h) & k"},
	}
	for _, c := range cases {
		if got := Pretty(c.e); got != c.want {
			t.Errorf("Pretty = %q, want %q", got, c.want)
		}
	}
}

func TestSubst(t *testing.T) {
	u := NewUniverse(2)
	a, b, o := V("a", IntType), V("b", IntType), V("o", IntType)
	// C = o >= a & o >= b
	c := And(Ge(o, a), Ge(o, b))
	got := Subst(c, "o", Ite(Gt(a, b), a, b))
	env := Env{"a": IntVal(u, 7), "b": IntVal(u, 2)}
	if !got.Eval(u, env).Bool() {
		t.Error("substituted formula should hold")
	}
	// Subtrees without the variable should be shared (pointer equality).
	noO := Ge(a, b)
	if Subst(noO, "o", a) != noO {
		t.Error("Subst copied an unchanged subtree")
	}
}

func TestVarsAndEqual(t *testing.T) {
	a, b := V("a", IntType), V("b", IntType)
	e := Ite(Gt(a, b), a, b)
	vars := Vars(e)
	if len(vars) != 2 || vars[0] != "a" || vars[1] != "b" {
		t.Errorf("Vars = %v", vars)
	}
	if !Equal(e, Ite(Gt(a, b), a, b)) {
		t.Error("Equal false negative")
	}
	if Equal(e, Ite(Gt(b, a), a, b)) {
		t.Error("Equal false positive")
	}
	if Equal(a, b) {
		t.Error("distinct vars equal")
	}
}

func TestVocabularyLookup(t *testing.T) {
	u := NewUniverse(2)
	e := u.MustDeclareEnum("E", "A", "B")
	voc := CoherenceVocabulary(u, CoherenceOptions{Enums: []*EnumType{e}, WithEnumConstants: true})
	if _, err := voc.Fn("add"); err != nil {
		t.Error(err)
	}
	if _, err := voc.Fn("equals"); err == nil {
		t.Error("equals should be reported overloaded")
	}
	f, err := voc.FnFor("equals", SetType, SetType)
	if err != nil || f.Ret != BoolType {
		t.Errorf("FnFor(equals, Set, Set) = %v, %v", f, err)
	}
	if _, err := voc.FnFor("equals", SetType, IntType); err == nil {
		t.Error("mixed equals should not resolve")
	}
	if _, err := voc.Fn("A"); err != nil {
		t.Error("enum literal constant missing:", err)
	}
	if _, err := voc.Fn("C0"); err == nil {
		t.Error("PID constants should be off by default")
	}
	voc2 := CoherenceVocabulary(u, CoherenceOptions{WithPIDConstants: true})
	if _, err := voc2.Fn("C1"); err != nil {
		t.Error("PID constant missing with WithPIDConstants")
	}
}

func TestVocabularySharedInstances(t *testing.T) {
	u := NewUniverse(2)
	voc := CoherenceVocabulary(u, CoherenceOptions{})
	f := voc.MustFnFor("equals", IntType, IntType)
	if f != EqualsFn(IntType) {
		t.Error("vocabulary equals is not the canonical instance")
	}
	if voc.MustFn("add") != FnAdd {
		t.Error("vocabulary add is not the canonical instance")
	}
}

func TestRandomExprExactSize(t *testing.T) {
	u := NewUniverse(3)
	voc := CoherenceVocabulary(u, CoherenceOptions{})
	vars := []*Var{V("a", IntType), V("b", IntType), V("s", SetType), V("p", PIDType)}
	rng := rand.New(rand.NewSource(42))
	for _, typ := range []Type{BoolType, IntType, SetType} {
		for size := 1; size <= 12; size++ {
			e, err := RandomExpr(u, rng, voc, vars, typ, size)
			if err != nil {
				t.Fatalf("type %s size %d: %v", typ, size, err)
			}
			if e.Size() != size {
				t.Fatalf("type %s: asked size %d, got %d (%s)", typ, size, e.Size(), e)
			}
			if e.Type() != typ {
				t.Fatalf("wrong type: %s vs %s", e.Type(), typ)
			}
			// Must evaluate without panicking.
			env := RandomEnv(u, rng, vars)
			_ = e.Eval(u, env)
		}
	}
}

func TestRandomExprInfeasible(t *testing.T) {
	u := NewUniverse(3)
	// A vocabulary with no PID-producing functions and no PID vars.
	voc := NewVocabulary(FnAdd)
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomExpr(u, rng, voc, nil, PIDType, 3); err == nil {
		t.Error("expected infeasibility error")
	}
	// Size 2 for Int with only add (arity 2) is impossible.
	if _, err := RandomExpr(u, rng, voc, []*Var{V("a", IntType)}, IntType, 2); err == nil {
		t.Error("expected no size-2 expression with only binary add")
	}
}

func TestZeroOf(t *testing.T) {
	u := NewUniverse(2)
	e := u.MustDeclareEnum("E", "A", "B")
	if ZeroOf(BoolType).Bool() {
		t.Error("zero bool should be false")
	}
	if ZeroOf(IntType).Int() != 0 {
		t.Error("zero int should be 0")
	}
	if ZeroOf(PIDType).PID() != 0 {
		t.Error("zero pid should be 0")
	}
	if ZeroOf(SetType).Set() != 0 {
		t.Error("zero set should be empty")
	}
	if ZeroOf(EnumOf(e)).EnumOrd() != 0 {
		t.Error("zero enum should be first value")
	}
}

// Property: set algebra laws hold for the vocabulary's evaluation functions.
func TestSetAlgebraProperties(t *testing.T) {
	u := NewUniverse(8)
	mask := u.SetMask()
	type lawFn func(a, b, c uint64) bool
	laws := map[string]lawFn{
		"union-commutes": func(a, b, c uint64) bool {
			x := FnSetUnion.Apply(u, []Value{SetVal(a), SetVal(b)})
			y := FnSetUnion.Apply(u, []Value{SetVal(b), SetVal(a)})
			return x == y
		},
		"demorgan": func(a, b, c uint64) bool {
			// c \ (a ∪ b) == (c \ a) ∩ (c \ b)
			lhs := FnSetMinus.Apply(u, []Value{SetVal(c), FnSetUnion.Apply(u, []Value{SetVal(a), SetVal(b)})})
			rhs := FnSetInter.Apply(u, []Value{
				FnSetMinus.Apply(u, []Value{SetVal(c), SetVal(a)}),
				FnSetMinus.Apply(u, []Value{SetVal(c), SetVal(b)}),
			})
			return lhs == rhs
		},
		"size-inclusion-exclusion": func(a, b, c uint64) bool {
			sa := FnSetSize.Apply(u, []Value{SetVal(a)}).Int()
			sb := FnSetSize.Apply(u, []Value{SetVal(b)}).Int()
			si := FnSetSize.Apply(u, []Value{FnSetInter.Apply(u, []Value{SetVal(a), SetVal(b)})}).Int()
			su := FnSetSize.Apply(u, []Value{FnSetUnion.Apply(u, []Value{SetVal(a), SetVal(b)})}).Int()
			return su == sa+sb-si
		},
	}
	for name, law := range laws {
		law := law
		f := func(a, b, c uint64) bool { return law(a&mask, b&mask, c&mask) }
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Property: wrapping arithmetic agrees with modular arithmetic.
func TestWrapArithmeticProperty(t *testing.T) {
	u := NewUniverse(2)
	f := func(a, b int16) bool {
		x, y := IntVal(u, int64(a)), IntVal(u, int64(b))
		sum := FnAdd.Apply(u, []Value{x, y})
		return sum.Int() == u.WrapInt(x.Int()+y.Int())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEvalPanicsOnUnbound(t *testing.T) {
	u := NewUniverse(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unbound variable")
		}
	}()
	V("nope", IntType).Eval(u, Env{})
}

func TestNewApplyValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on type mismatch")
		}
	}()
	NewApply(FnAdd, V("a", IntType), V("s", SetType))
}

func TestEnvClone(t *testing.T) {
	u := NewUniverse(2)
	e := Env{"x": IntVal(u, 1)}
	c := e.Clone()
	c["x"] = IntVal(u, 2)
	if e["x"].Int() != 1 {
		t.Error("Clone aliases the original")
	}
}
