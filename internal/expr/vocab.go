package expr

import "fmt"

// Func and Vocabulary implement the paper's expression vocabulary
// G = (T, F) (§4.1). See prims.go for the canonical function instances.

// Func is a typed function symbol: a name, parameter types, result type,
// and a total evaluation function over the Universe's carrier sets.
// Arity-zero Funcs are the vocabulary's constants.
type Func struct {
	Name   string
	Params []Type
	Ret    Type
	// Apply evaluates the function on argument values. Implementations
	// must be total on the finite carriers and agree exactly with the SMT
	// encoding in internal/smt.
	Apply func(u *Universe, args []Value) Value
}

// Arity reports the number of parameters.
func (f *Func) Arity() int { return len(f.Params) }

func (f *Func) String() string {
	s := f.Name + "("
	for i, p := range f.Params {
		if i > 0 {
			s += ", "
		}
		s += p.String()
	}
	return s + ") -> " + f.Ret.String()
}

// Vocabulary is the finite set of typed function symbols available to the
// synthesizer.
type Vocabulary struct {
	funcs  []*Func
	byName map[string][]*Func
}

// NewVocabulary builds a vocabulary from function symbols.
func NewVocabulary(funcs ...*Func) *Vocabulary {
	v := &Vocabulary{byName: make(map[string][]*Func)}
	for _, f := range funcs {
		v.Add(f)
	}
	return v
}

// Add appends a function symbol.
func (v *Vocabulary) Add(f *Func) {
	v.funcs = append(v.funcs, f)
	v.byName[f.Name] = append(v.byName[f.Name], f)
}

// Funcs returns all function symbols in insertion order.
func (v *Vocabulary) Funcs() []*Func { return v.funcs }

// Fn returns the unique function with the given name, or an error if the
// name is absent or overloaded (equals/ite are overloaded per type; resolve
// those with FnFor).
func (v *Vocabulary) Fn(name string) (*Func, error) {
	fs := v.byName[name]
	switch len(fs) {
	case 0:
		return nil, fmt.Errorf("expr: vocabulary has no function %s", name)
	case 1:
		return fs[0], nil
	default:
		return nil, fmt.Errorf("expr: function %s is overloaded; use FnFor", name)
	}
}

// MustFn is Fn that panics; for static protocol definitions.
func (v *Vocabulary) MustFn(name string) *Func {
	f, err := v.Fn(name)
	if err != nil {
		panic(err)
	}
	return f
}

// FnFor resolves a possibly overloaded name against argument types.
func (v *Vocabulary) FnFor(name string, args ...Type) (*Func, error) {
	for _, f := range v.byName[name] {
		if len(f.Params) != len(args) {
			continue
		}
		ok := true
		for i, p := range f.Params {
			if p != args[i] {
				ok = false
				break
			}
		}
		if ok {
			return f, nil
		}
	}
	return nil, fmt.Errorf("expr: no overload of %s for %v", name, args)
}

// MustFnFor is FnFor that panics.
func (v *Vocabulary) MustFnFor(name string, args ...Type) *Func {
	f, err := v.FnFor(name, args...)
	if err != nil {
		panic(err)
	}
	return f
}

// CoherenceOptions configures CoherenceVocabulary.
type CoherenceOptions struct {
	// Enums lists the user enum types for which equals/ite overloads (and
	// literal constants, if enabled) are added.
	Enums []*EnumType
	// WithEnumConstants adds each enum literal as an arity-0 symbol.
	// Guards such as Msg.MType = READ need them.
	WithEnumConstants bool
	// WithPIDConstants adds each concrete PID C0..C(n-1) as a constant.
	// Off by default: synthesized protocol code should generalize over
	// processes rather than hard-code them.
	WithPIDConstants bool
	// WithSetLiterals adds the empty-set constant.
	WithSetLiterals bool
	// WithoutEnumIte drops the ite overloads for enum types from the
	// enumeration space. Control-state changes are expressed by snippet
	// target states rather than enum-valued updates, so protocols rarely
	// need them and the search space shrinks considerably.
	WithoutEnumIte bool
}

// CoherenceVocabulary builds the Table 1 vocabulary of the paper for the
// given universe: integer arithmetic (add, sub, inc, dec), set operations
// (setadd, setsize, setunion, setinter, setminus, setof, setcontains),
// Boolean connectives (and, or, not), comparisons (iszero, ge, gt), the
// per-type equals and ite families, and the numcaches constant, plus the
// integer constants 0 and 1 and the Boolean constants (the paper's fixed
// constant symbols; other integer constants are abbreviations, e.g.
// 2 = add(1,1)).
func CoherenceVocabulary(u *Universe, opts CoherenceOptions) *Vocabulary {
	v := NewVocabulary(
		FnAdd, FnSub, FnInc, FnDec,
		FnSetAdd, FnSetSize, FnSetUnion, FnSetInter, FnSetMinus, FnSetOf, FnSetContains,
		FnAnd, FnOr, FnNot,
		FnIsZero, FnGe, FnGt,
	)

	types := []Type{BoolType, IntType, PIDType, SetType}
	for _, e := range opts.Enums {
		types = append(types, EnumOf(e))
	}
	for _, t := range types {
		v.Add(EqualsFn(t))
		if opts.WithoutEnumIte && t.Kind == KindEnum {
			continue
		}
		v.Add(IteFn(t))
	}

	v.Add(FnNumCaches)
	v.Add(FnZero)
	v.Add(FnOne)
	v.Add(FnTrue)
	v.Add(FnFalse)
	if opts.WithSetLiterals {
		v.Add(FnEmptySet)
	}
	if opts.WithEnumConstants {
		for _, e := range opts.Enums {
			for i := range e.Values {
				v.Add(EnumLitFn(e, i))
			}
		}
	}
	if opts.WithPIDConstants {
		for p := 0; p < u.NumCaches(); p++ {
			v.Add(PIDLitFn(p))
		}
	}
	return v
}
