package expr

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Value is a typed runtime value. Value is comparable: two Values are equal
// iff they have the same type and denote the same element of the carrier
// set. This makes Values usable directly as map keys and as components of
// expression signatures.
type Value struct {
	t Type
	// n holds the payload for Bool (0/1), Int (wrapped, sign-extended),
	// PID (index) and Enum (ordinal).
	n int64
	// mask holds the payload for Set.
	mask uint64
}

// Type reports the type of the value.
func (v Value) Type() Type { return v.t }

// BoolVal constructs a Boolean value.
func BoolVal(b bool) Value {
	n := int64(0)
	if b {
		n = 1
	}
	return Value{t: BoolType, n: n}
}

// IntVal constructs an integer value, wrapped into the universe's W-bit
// two's-complement range.
func IntVal(u *Universe, x int64) Value {
	return Value{t: IntType, n: u.WrapInt(x)}
}

// PIDVal constructs a process-identifier value. The index must be a valid
// PID in the intended universe; constructors do not carry the universe, so
// range errors surface in the evaluator and SMT layers that do.
func PIDVal(p int) Value { return Value{t: PIDType, n: int64(p)} }

// SetVal constructs a set value from a bitmask over PIDs.
func SetVal(mask uint64) Value { return Value{t: SetType, mask: mask} }

// SetOf constructs a set value containing exactly the given PIDs.
func SetOf(pids ...int) Value {
	var m uint64
	for _, p := range pids {
		m |= 1 << uint(p)
	}
	return SetVal(m)
}

// EnumVal constructs an enum value by ordinal.
func EnumVal(e *EnumType, ord int) Value {
	if ord < 0 || ord >= len(e.Values) {
		panic(fmt.Sprintf("expr: enum %s ordinal %d out of range", e.Name, ord))
	}
	return Value{t: EnumOf(e), n: int64(ord)}
}

// EnumValOf constructs an enum value by name, panicking if absent. Enum
// literal sets are static in protocol specs, so a panic here is a
// programming error, not an input error.
func EnumValOf(e *EnumType, name string) Value {
	ord := e.Ord(name)
	if ord < 0 {
		panic(fmt.Sprintf("expr: enum %s has no value %s", e.Name, name))
	}
	return EnumVal(e, ord)
}

// Bool extracts a Boolean payload.
func (v Value) Bool() bool {
	v.check(KindBool)
	return v.n != 0
}

// Int extracts an integer payload.
func (v Value) Int() int64 {
	v.check(KindInt)
	return v.n
}

// PID extracts a process-identifier payload.
func (v Value) PID() int {
	v.check(KindPID)
	return int(v.n)
}

// Set extracts a set payload as a bitmask.
func (v Value) Set() uint64 {
	v.check(KindSet)
	return v.mask
}

// EnumOrd extracts an enum ordinal payload.
func (v Value) EnumOrd() int {
	v.check(KindEnum)
	return int(v.n)
}

func (v Value) check(k Kind) {
	if v.t.Kind != k {
		panic(fmt.Sprintf("expr: %s payload requested from %s value", k, v.t))
	}
}

// IsZero reports whether v is the zero Value (no type); used to detect
// uninitialized environment slots.
func (v Value) IsZero() bool { return v == Value{} }

// ZeroOf returns the default value of a type: false, 0, PID 0, {}, or the
// first enum value. The EFSM runtime initializes process variables with it.
func ZeroOf(t Type) Value {
	switch t.Kind {
	case KindBool:
		return BoolVal(false)
	case KindInt:
		return Value{t: IntType}
	case KindPID:
		return PIDVal(0)
	case KindSet:
		return SetVal(0)
	case KindEnum:
		return EnumVal(t.Enum, 0)
	}
	panic("expr: ZeroOf on invalid type")
}

// String renders the value in TRANSIT surface syntax.
func (v Value) String() string {
	switch v.t.Kind {
	case KindBool:
		if v.n != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return fmt.Sprintf("%d", v.n)
	case KindPID:
		return fmt.Sprintf("C%d", v.n)
	case KindSet:
		if v.mask == 0 {
			return "{}"
		}
		var elems []string
		for p := 0; p < 64; p++ {
			if v.mask&(1<<uint(p)) != 0 {
				elems = append(elems, fmt.Sprintf("C%d", p))
			}
		}
		sort.Strings(elems)
		return "{" + strings.Join(elems, ", ") + "}"
	case KindEnum:
		if v.t.Enum != nil && int(v.n) < len(v.t.Enum.Values) {
			return v.t.Enum.Values[v.n]
		}
		return fmt.Sprintf("enum#%d", v.n)
	}
	return "<invalid>"
}

// AppendEncoding appends a compact, injective byte encoding of the value
// (including its type) to dst. Signatures — vectors of values — are encoded
// by concatenation, which stays injective because every value encodes to a
// fixed 10-byte record.
func (v Value) AppendEncoding(dst []byte) []byte {
	var tag byte
	var payload uint64
	switch v.t.Kind {
	case KindBool:
		tag, payload = 0, uint64(v.n)
	case KindInt:
		tag, payload = 1, uint64(v.n)
	case KindPID:
		tag, payload = 2, uint64(v.n)
	case KindSet:
		tag, payload = 3, v.mask
	case KindEnum:
		tag, payload = 4, uint64(v.n)
	}
	dst = append(dst, tag)
	if v.t.Kind == KindEnum {
		dst = append(dst, byte(v.t.Enum.id))
	} else {
		dst = append(dst, 0)
	}
	for i := 0; i < 8; i++ {
		dst = append(dst, byte(payload>>(8*uint(i))))
	}
	return dst
}

// SetSize reports the cardinality of a set value.
func SetSize(v Value) int {
	return bits.OnesCount64(v.Set())
}

// ValuesOf enumerates every value of type t in the universe, in a canonical
// order. It is used by the reference SMT solver and by exhaustive tests;
// callers must ensure the domain is small enough to materialize.
func ValuesOf(u *Universe, t Type) []Value {
	n := u.DomainSize(t)
	out := make([]Value, 0, n)
	switch t.Kind {
	case KindBool:
		out = append(out, BoolVal(false), BoolVal(true))
	case KindInt:
		for x := u.MinInt(); x <= u.MaxInt(); x++ {
			out = append(out, IntVal(u, x))
		}
	case KindPID:
		for p := 0; p < u.NumCaches(); p++ {
			out = append(out, PIDVal(p))
		}
	case KindSet:
		for m := uint64(0); m <= u.SetMask(); m++ {
			out = append(out, SetVal(m))
			if m == u.SetMask() {
				break
			}
		}
	case KindEnum:
		for i := range t.Enum.Values {
			out = append(out, EnumVal(t.Enum, i))
		}
	}
	return out
}

// MaxOf is the last value ValuesOf enumerates for t — the domain's
// saturated element: true, MaxInt, the highest PID, the full set, the
// final enum value.
func MaxOf(u *Universe, t Type) Value {
	switch t.Kind {
	case KindBool:
		return BoolVal(true)
	case KindInt:
		return IntVal(u, u.MaxInt())
	case KindPID:
		return PIDVal(u.NumCaches() - 1)
	case KindSet:
		return SetVal(u.SetMask())
	case KindEnum:
		return EnumVal(t.Enum, len(t.Enum.Values)-1)
	}
	panic("expr: MaxOf on invalid type")
}
