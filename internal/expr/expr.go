package expr

import (
	"fmt"
	"strings"
)

// Env is a valuation of variables by name. It is the S of the paper's
// concrete examples (S, k_o) and the model returned by the SMT solver.
type Env map[string]Value

// Clone returns a copy of the environment.
func (e Env) Clone() Env {
	out := make(Env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// Expr is a typed expression over a vocabulary's function symbols and a set
// of typed variables, per §4.1 of the paper. Expressions are immutable.
type Expr interface {
	// Type reports the expression's type.
	Type() Type
	// Size is the number of function and variable symbols in the
	// expression (the paper's size(e) metric).
	Size() int
	// Eval evaluates the expression under an environment. Unbound
	// variables panic: the synthesizer and runtime always evaluate under
	// complete environments, so a miss is a wiring bug.
	Eval(u *Universe, env Env) Value
	// String renders the expression in prefix form, e.g. ite(gt(a,b),a,b).
	String() string
}

// Var is a variable reference.
type Var struct {
	Name string
	VT   Type
}

// NewVar constructs a variable of the given type.
func NewVar(name string, t Type) *Var { return &Var{Name: name, VT: t} }

// Type implements Expr.
func (v *Var) Type() Type { return v.VT }

// Size implements Expr.
func (v *Var) Size() int { return 1 }

// Eval implements Expr.
func (v *Var) Eval(_ *Universe, env Env) Value {
	val, ok := env[v.Name]
	if !ok {
		panic(fmt.Sprintf("expr: unbound variable %s", v.Name))
	}
	if val.Type() != v.VT {
		panic(fmt.Sprintf("expr: variable %s bound to %s, declared %s", v.Name, val.Type(), v.VT))
	}
	return val
}

// String implements Expr.
func (v *Var) String() string { return v.Name }

// Const is a literal value. Constants may appear in examples and snippets
// even when they are not part of the enumeration vocabulary (e.g. concrete
// PIDs like C1 in a concrete snippet).
type Const struct {
	Val Value
}

// NewConst wraps a value as an expression.
func NewConst(v Value) *Const { return &Const{Val: v} }

// Type implements Expr.
func (c *Const) Type() Type { return c.Val.Type() }

// Size implements Expr.
func (c *Const) Size() int { return 1 }

// Eval implements Expr.
func (c *Const) Eval(_ *Universe, _ Env) Value { return c.Val }

// String implements Expr.
func (c *Const) String() string { return c.Val.String() }

// Apply is the application of a vocabulary function to argument
// expressions.
type Apply struct {
	Fn   *Func
	Args []Expr
	size int
}

// NewApply builds a function application, validating arity and argument
// types.
func NewApply(fn *Func, args ...Expr) *Apply {
	if len(args) != len(fn.Params) {
		panic(fmt.Sprintf("expr: %s expects %d args, got %d", fn.Name, len(fn.Params), len(args)))
	}
	size := 1
	for i, a := range args {
		if a.Type() != fn.Params[i] {
			panic(fmt.Sprintf("expr: %s arg %d: want %s, got %s", fn.Name, i, fn.Params[i], a.Type()))
		}
		size += a.Size()
	}
	return &Apply{Fn: fn, Args: args, size: size}
}

// Type implements Expr.
func (a *Apply) Type() Type { return a.Fn.Ret }

// Size implements Expr.
func (a *Apply) Size() int { return a.size }

// Eval implements Expr.
func (a *Apply) Eval(u *Universe, env Env) Value {
	vals := make([]Value, len(a.Args))
	for i, arg := range a.Args {
		vals[i] = arg.Eval(u, env)
	}
	return a.Fn.Apply(u, vals)
}

// String implements Expr.
func (a *Apply) String() string {
	if len(a.Args) == 0 {
		return a.Fn.Name + "()"
	}
	parts := make([]string, len(a.Args))
	for i, arg := range a.Args {
		parts[i] = arg.String()
	}
	return a.Fn.Name + "(" + strings.Join(parts, ", ") + ")"
}

// Vars returns the distinct variable names free in e, in first-occurrence
// order.
func Vars(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch n := e.(type) {
		case *Var:
			if !seen[n.Name] {
				seen[n.Name] = true
				out = append(out, n.Name)
			}
		case *Apply:
			for _, a := range n.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return out
}

// Subst returns e with every occurrence of variable name replaced by
// replacement; it is the paper's C[o := e] substitution. Subtrees without
// the variable are shared, not copied.
func Subst(e Expr, name string, replacement Expr) Expr {
	switch n := e.(type) {
	case *Var:
		if n.Name == name {
			if replacement.Type() != n.VT {
				panic(fmt.Sprintf("expr: substituting %s (%s) with %s expression",
					name, n.VT, replacement.Type()))
			}
			return replacement
		}
		return n
	case *Const:
		return n
	case *Apply:
		changed := false
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = Subst(a, name, replacement)
			if args[i] != a {
				changed = true
			}
		}
		if !changed {
			return n
		}
		return NewApply(n.Fn, args...)
	}
	panic("expr: Subst on unknown node")
}

// Equal reports structural equality of two expressions.
func Equal(a, b Expr) bool {
	switch x := a.(type) {
	case *Var:
		y, ok := b.(*Var)
		return ok && x.Name == y.Name && x.VT == y.VT
	case *Const:
		y, ok := b.(*Const)
		return ok && x.Val == y.Val
	case *Apply:
		y, ok := b.(*Apply)
		if !ok || x.Fn != y.Fn || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !Equal(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}
