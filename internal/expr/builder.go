package expr

import "fmt"

// Builder helpers for constructing expressions in Go code (snippets,
// invariants, tests). All helpers use the canonical Func instances from
// prims.go so the results evaluate and SMT-encode uniformly. Helpers that
// take two operands of a common type (Eq, Ite) dispatch on the operand
// type.

// And builds the conjunction of one or more Boolean expressions,
// left-associated. And() with no arguments is true.
func And(es ...Expr) Expr {
	if len(es) == 0 {
		return True()
	}
	out := es[0]
	for _, e := range es[1:] {
		out = NewApply(FnAnd, out, e)
	}
	return out
}

// Or builds the disjunction of one or more Boolean expressions. Or() with
// no arguments is false.
func Or(es ...Expr) Expr {
	if len(es) == 0 {
		return False()
	}
	out := es[0]
	for _, e := range es[1:] {
		out = NewApply(FnOr, out, e)
	}
	return out
}

// Not negates a Boolean expression.
func Not(e Expr) Expr { return NewApply(FnNot, e) }

// Implies desugars a ⇒ b to or(not(a), b), keeping the vocabulary minimal.
func Implies(a, b Expr) Expr { return Or(Not(a), b) }

// Eq builds equals(a, b), dispatching on the operand type.
func Eq(a, b Expr) Expr {
	if a.Type() != b.Type() {
		panic(fmt.Sprintf("expr: Eq on mismatched types %s and %s", a.Type(), b.Type()))
	}
	return NewApply(EqualsFn(a.Type()), a, b)
}

// Neq is not(equals(a, b)).
func Neq(a, b Expr) Expr { return Not(Eq(a, b)) }

// Ite builds ite(cond, then, els), dispatching on the branch type.
func Ite(cond, then, els Expr) Expr {
	if then.Type() != els.Type() {
		panic(fmt.Sprintf("expr: Ite branches differ: %s vs %s", then.Type(), els.Type()))
	}
	return NewApply(IteFn(then.Type()), cond, then, els)
}

// Gt is signed a > b.
func Gt(a, b Expr) Expr { return NewApply(FnGt, a, b) }

// Ge is signed a >= b.
func Ge(a, b Expr) Expr { return NewApply(FnGe, a, b) }

// Lt desugars a < b to gt(b, a).
func Lt(a, b Expr) Expr { return Gt(b, a) }

// Le desugars a <= b to ge(b, a).
func Le(a, b Expr) Expr { return Ge(b, a) }

// Add is wrapping integer addition.
func Add(a, b Expr) Expr { return NewApply(FnAdd, a, b) }

// Sub is wrapping integer subtraction.
func Sub(a, b Expr) Expr { return NewApply(FnSub, a, b) }

// Inc is a + 1.
func Inc(a Expr) Expr { return NewApply(FnInc, a) }

// Dec is a - 1.
func Dec(a Expr) Expr { return NewApply(FnDec, a) }

// IsZero tests an integer for zero.
func IsZero(a Expr) Expr { return NewApply(FnIsZero, a) }

// SetAdd inserts a PID into a set.
func SetAdd(s, p Expr) Expr { return NewApply(FnSetAdd, s, p) }

// SetUnion is set union.
func SetUnion(a, b Expr) Expr { return NewApply(FnSetUnion, a, b) }

// SetInter is set intersection.
func SetInter(a, b Expr) Expr { return NewApply(FnSetInter, a, b) }

// SetMinus is set difference.
func SetMinus(a, b Expr) Expr { return NewApply(FnSetMinus, a, b) }

// Singleton is setof(p), the singleton set.
func Singleton(p Expr) Expr { return NewApply(FnSetOf, p) }

// SetContains is the membership test.
func SetContains(s, p Expr) Expr { return NewApply(FnSetContains, s, p) }

// Card is setsize(s), the cardinality of a set.
func Card(s Expr) Expr { return NewApply(FnSetSize, s) }

// SubsetEq expresses a ⊆ b as equals(setunion(a,b), b).
func SubsetEq(a, b Expr) Expr { return Eq(SetUnion(a, b), b) }

// NumCaches is the numcaches() constant.
func NumCaches() Expr { return NewApply(FnNumCaches) }

// True is the Boolean constant true.
func True() Expr { return NewApply(FnTrue) }

// False is the Boolean constant false.
func False() Expr { return NewApply(FnFalse) }

// EmptySet is the empty-set constant.
func EmptySet() Expr { return NewApply(FnEmptySet) }

// IntC builds an integer literal as a constant expression.
func IntC(u *Universe, x int64) Expr { return NewConst(IntVal(u, x)) }

// BoolC builds a Boolean literal.
func BoolC(b bool) Expr { return NewConst(BoolVal(b)) }

// PIDC builds a concrete PID literal (for concrete snippets).
func PIDC(p int) Expr { return NewApply(PIDLitFn(p)) }

// EnumC builds an enum literal by name.
func EnumC(e *EnumType, name string) Expr {
	ord := e.Ord(name)
	if ord < 0 {
		panic(fmt.Sprintf("expr: enum %s has no value %s", e.Name, name))
	}
	return NewApply(EnumLitFn(e, ord))
}

// SetC builds a concrete set literal containing the given PIDs.
func SetC(pids ...int) Expr { return NewConst(SetOf(pids...)) }

// V is shorthand for NewVar.
func V(name string, t Type) *Var { return NewVar(name, t) }
