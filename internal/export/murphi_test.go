package export

import (
	"strings"
	"testing"

	"transit/internal/core"
	"transit/internal/protocols"
	"transit/internal/synth"
)

func TestMurphiExportVI(t *testing.T) {
	spec := protocols.VI(3)
	if _, err := core.Complete(spec.Sys, spec.Vocab, spec.Snippets,
		core.Options{Limits: synth.Limits{MaxSize: 10}}); err != nil {
		t.Fatal(err)
	}
	src, err := Murphi(spec.Sys)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"const", "NCACHES: 3", "PidT: 0..NCACHES-1",
		"VIReqTypeT: enum { VIReqType_Get, VIReqType_Put }",
		"ReqNetMsgT: record", "procDir: DirStateT",
		"procCache: array [PidT] of CacheStateT",
		"startstate", "ruleset self: PidT do",
		"netReqNet.count", "SetSize", "endrule",
		"VIDirState_B", // busy state name
	} {
		if !strings.Contains(src, want) {
			t.Errorf("Murphi output missing %q", want)
		}
	}
	// Every non-defer transition becomes a rule.
	rules := strings.Count(src, "rule \"")
	var nonDefer int
	for _, d := range spec.Sys.Defs {
		for _, tr := range d.Transitions {
			if !tr.Defer {
				nonDefer++
			}
		}
	}
	if rules != nonDefer {
		t.Errorf("rules = %d, non-defer transitions = %d", rules, nonDefer)
	}
}

func TestMurphiExportMSIWithMulticast(t *testing.T) {
	spec := protocols.MSI(2)
	if _, err := core.Complete(spec.Sys, spec.Vocab, spec.Snippets,
		core.Options{Limits: synth.Limits{MaxSize: 12}}); err != nil {
		t.Fatal(err)
	}
	src, err := Murphi(spec.Sys)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"for dst: PidT do",     // multicast expansion
		"SetMinus(", "SetAdd(", // set vocabulary in use
		"netCacheNet: array [PidT] of", // by-field routing
		"stall rule: modeled implicitly",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("Murphi output missing %q", want)
		}
	}
}

func TestMurphiRejectsInvalidSystem(t *testing.T) {
	spec := protocols.VI(2) // no transitions completed, but still valid
	if _, err := Murphi(spec.Sys); err != nil {
		t.Fatalf("skeleton should export: %v", err)
	}
}
