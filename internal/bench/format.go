package bench

import (
	"fmt"
	"strings"
)

// FormatTable2 renders the CEGIS trace like the paper's Table 2.
func FormatTable2(rows []Table2Row, final string) string {
	var sb strings.Builder
	sb.WriteString("Table 2: SolveConcolic trace for max(a, b)\n")
	fmt.Fprintf(&sb, "%-5s %-32s %-44s %s\n", "Iter", "Expression checked", "Witness", "Concrete example inferred")
	for _, r := range rows {
		witness, ex := r.Witness, r.NewExample
		if witness == "" {
			witness, ex = "-- (consistent)", "--"
		}
		fmt.Fprintf(&sb, "%-5d %-32s %-44s %s\n", r.Iter, r.Candidate, witness, ex)
	}
	fmt.Fprintf(&sb, "Final expression: %s\n", final)
	return sb.String()
}

// FormatTable3 renders the benchmark suite like the paper's Table 3.
func FormatTable3(rows []Table3Row) string {
	var sb strings.Builder
	sb.WriteString("Table 3: expression-inference benchmarks\n")
	fmt.Fprintf(&sb, "%-24s %-52s %5s %5s %12s %6s %5s %9s\n",
		"Benchmark", "Description", "Size", "Cons", "Time", "Iters", "SMT", "Conflicts")
	for _, r := range rows {
		switch {
		case r.Skipped:
			fmt.Fprintf(&sb, "%-24s %-52s %5d %5s %12s\n",
				r.Name, r.Description, r.ExpectedSize, "-", "skipped (-long)")
		case r.TimedOut:
			fmt.Fprintf(&sb, "%-24s %-52s %5d %5d %12s\n",
				r.Name, r.Description, r.ExpectedSize, r.Constraints, "timeout")
		default:
			fmt.Fprintf(&sb, "%-24s %-52s %5d %5d %12s %6d %5d %9d\n",
				r.Name, r.Description, r.FoundSize, r.Constraints,
				r.Time.Round(1000*1000), r.Iterations, r.SMTQueries, r.Conflicts)
			fmt.Fprintf(&sb, "%-24s   found: %s\n", "", r.Found)
		}
	}
	sb.WriteString("(SMT and Conflicts are the \"smt.queries\" and \"sat.conflicts\" counters from\n each row's metrics registry)\n")
	return sb.String()
}

// FormatFig5 renders the pruned-vs-exhaustive series (the paper plots it
// log-scale; we emit the series and the ratio).
func FormatFig5(points []Fig5Point) string {
	var sb strings.Builder
	sb.WriteString("Figure 5: expressions explored by SolveConcrete (avg per target size)\n")
	fmt.Fprintf(&sb, "%5s %16s %16s %10s\n", "Size", "Pruned", "Exhaustive", "Ratio")
	for _, p := range points {
		switch {
		case p.ExhaustiveRan && p.ExhaustiveCapped:
			fmt.Fprintf(&sb, "%5d %16.0f %14.0f+ %8.1fx+\n", p.Size, p.PrunedAvg, p.ExhaustiveAvg,
				p.ExhaustiveAvg/p.PrunedAvg)
		case p.ExhaustiveRan:
			fmt.Fprintf(&sb, "%5d %16.0f %16.0f %9.1fx\n", p.Size, p.PrunedAvg, p.ExhaustiveAvg,
				p.ExhaustiveAvg/p.PrunedAvg)
		default:
			fmt.Fprintf(&sb, "%5d %16.0f %16s %10s\n", p.Size, p.PrunedAvg, "(omitted)", "-")
		}
	}
	sb.WriteString("('+' marks exhaustive runs cut off at the enumeration cap: lower bounds,\n the paper's memory-limit case)\n")
	return sb.String()
}

// FormatTable4 renders protocol-synthesis throughput like the paper's
// Table 4.
func FormatTable4(rows []Table4Row) string {
	var sb strings.Builder
	sb.WriteString("Table 4: performance of snippet-based design\n")
	fmt.Fprintf(&sb, "%-9s %7s %9s | %7s %9s %9s | %7s %9s %9s | %10s %9s\n",
		"Protocol", "Caches", "Scenarios",
		"Updates", "Exps", "Time",
		"Guards", "Exps", "Time",
		"States", "MC time")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-9s %7d %9d | %7d %9d %9s | %7d %9d %9s | %10d %9s\n",
			r.Protocol, r.NumCaches, r.Scenarios,
			r.UpdatesSynth, r.UpdateExprs, r.UpdateTime.Round(1000*1000),
			r.GuardsSynth, r.GuardExprs, r.GuardTime.Round(1000*1000),
			r.States, r.CheckTime.Round(1000*1000))
	}
	return sb.String()
}

// FormatTable5 renders the case-study workflow metrics like the paper's
// Table 5.
func FormatTable5(rows []Table5Row) string {
	var sb strings.Builder
	sb.WriteString("Table 5: effectiveness metrics for protocol design\n")
	fmt.Fprintf(&sb, "%-18s %8s %7s %7s %7s %12s %10s %12s\n",
		"Case study", "Initial", "Added", "Iters", "Total", "Transitions", "States", "Time")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %8d %7d %7d %7d %12d %10d %12s\n",
			r.Study, r.InitialSnippets, r.AddedSnippets, r.Iterations,
			r.TotalSnippets, r.Transitions, r.FinalStates, r.Elapsed.Round(1000*1000))
	}
	return sb.String()
}
