package bench

import (
	"strings"
	"testing"
	"time"
)

func TestTable2Shape(t *testing.T) {
	rows, final, stats, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 || len(rows) > 10 {
		t.Errorf("expected a few CEGIS iterations, got %d", len(rows))
	}
	last := rows[len(rows)-1]
	if last.Witness != "" {
		t.Error("final row must be accepted (no witness)")
	}
	if final == "" || stats.SMTQueries == 0 {
		t.Error("final expression / stats missing")
	}
	out := FormatTable2(rows, final)
	if !strings.Contains(out, "Final expression") {
		t.Error("formatter output incomplete")
	}
	t.Logf("\n%s", out)
}

func TestTable3ShortRows(t *testing.T) {
	rows, err := Table3(Table3Options{Timeout: 2 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	var solved, skipped int
	for _, r := range rows {
		switch {
		case r.Skipped:
			skipped++
		case r.TimedOut:
			t.Errorf("%s timed out", r.Name)
		default:
			solved++
			if r.Found == "" {
				t.Errorf("%s reported no expression", r.Name)
			}
		}
	}
	if skipped == 0 {
		t.Error("long rows should be skipped by default")
	}
	if solved < 8 {
		t.Errorf("expected >= 8 solved rows, got %d", solved)
	}
	t.Logf("\n%s", FormatTable3(rows))
}

func TestSMTBenchShape(t *testing.T) {
	// workers=1: with a concurrent pool, identical-key jobs race on the
	// memo cache, so the number of queries actually executed (vs replayed
	// from the memo) is timing-dependent and the cross-mode equality
	// below would flake.
	rows, err := SMTBench(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Canonical models: the execution strategy must not change what
		// was asked, only how much encoding it cost.
		if r.Incremental.Queries != r.OneShot.Queries {
			t.Errorf("%s: query counts differ: incremental %d vs one-shot %d",
				r.Protocol, r.Incremental.Queries, r.OneShot.Queries)
		}
		if r.Incremental.Clauses > r.OneShot.Clauses {
			t.Errorf("%s: incremental encoded more clauses (%d) than one-shot (%d)",
				r.Protocol, r.Incremental.Clauses, r.OneShot.Clauses)
		}
		if r.Incremental.ClausesReused == 0 {
			t.Errorf("%s: incremental run reused no clauses", r.Protocol)
		}
		if r.Incremental.Sessions == 0 {
			t.Errorf("%s: incremental run opened no sessions", r.Protocol)
		}
		if r.OneShot.ClausesReused != 0 {
			t.Errorf("%s: one-shot run reports %d reused clauses, want 0",
				r.Protocol, r.OneShot.ClausesReused)
		}
	}
	t.Logf("\n%s", FormatSMT(rows))
}

func TestFig5SmallShape(t *testing.T) {
	pts, err := Fig5(Fig5Options{
		Sizes: []int{2, 4, 6, 8}, Trials: 2, Seed: 7,
		MaxExhaustiveSize: 8, ExhaustiveCap: 5_000_000, PrunedCap: 5_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	// The headline shape: pruning explores no more than exhaustive, and
	// the gap grows with size.
	for _, p := range pts {
		if !p.ExhaustiveRan {
			continue
		}
		if p.PrunedAvg > p.ExhaustiveAvg {
			t.Errorf("size %d: pruned %f > exhaustive %f", p.Size, p.PrunedAvg, p.ExhaustiveAvg)
		}
	}
	first, last := pts[0], pts[len(pts)-1]
	if last.ExhaustiveAvg/last.PrunedAvg <= first.ExhaustiveAvg/first.PrunedAvg {
		t.Logf("warning: ratio did not grow monotonically (%f -> %f); acceptable for tiny trials",
			first.ExhaustiveAvg/first.PrunedAvg, last.ExhaustiveAvg/last.PrunedAvg)
	}
	t.Logf("\n%s", FormatFig5(pts))
}

func TestTable4Shape(t *testing.T) {
	rows, err := Table4(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Protocol != "VI" || rows[1].Protocol != "MSI" {
		t.Fatalf("rows = %+v", rows)
	}
	// The paper's shape: MSI has more scenarios, more synthesized
	// updates, more expressions tried, and a larger state space than VI.
	vi, msi := rows[0], rows[1]
	if msi.Scenarios <= vi.Scenarios || msi.UpdatesSynth <= vi.UpdatesSynth ||
		msi.States <= vi.States {
		t.Errorf("MSI should dominate VI: vi=%+v msi=%+v", vi, msi)
	}
	t.Logf("\n%s", FormatTable4(rows))
}

func TestTable5Shape(t *testing.T) {
	rows, err := Table5(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Iterations < 2 {
			t.Errorf("%s: expected iterative convergence, got %d iterations", r.Study, r.Iterations)
		}
		if r.FinalStates == 0 || r.Transitions == 0 {
			t.Errorf("%s: empty final protocol", r.Study)
		}
	}
	t.Logf("\n%s", FormatTable5(rows))
}
