package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"transit/internal/core"
	"transit/internal/engine"
	"transit/internal/obs"
	"transit/internal/protocols"
	"transit/internal/synth"
)

// EngineRow compares serial (one worker) against parallel synthesis of one
// protocol through the job engine, plus the effect of the cross-job memo
// cache on a warm rerun.
type EngineRow struct {
	Protocol    string        `json:"protocol"`
	NumCaches   int           `json:"num_caches"`
	Jobs        int           `json:"jobs"`
	Workers     int           `json:"workers"`
	SerialTime  time.Duration `json:"-"`
	Parallel    time.Duration `json:"-"`
	WarmTime    time.Duration `json:"-"`
	SerialMS    float64       `json:"serial_ms"`
	ParallelMS  float64       `json:"parallel_ms"`
	WarmMS      float64       `json:"warm_cache_ms"`
	Speedup     float64       `json:"speedup"`
	Utilization float64       `json:"utilization"`
	CacheHits   int           `json:"cache_hits"`
	CacheMisses int           `json:"cache_misses"`
	HitRate     float64       `json:"cache_hit_rate"`
	// Work counters from the parallel run's obs metrics registry (the
	// same counters -stats-summary reports), not re-derived from
	// telemetry events.
	SMTQueries   int64 `json:"smt_queries"`
	SATConflicts int64 `json:"sat_conflicts"`
	Candidates   int64 `json:"candidates"`
}

// engineSpecs builds fresh copies of the four case-study protocols; each
// run must synthesize into a pristine System because Complete installs the
// completed transitions in place.
func engineSpecs(numCaches int) []func() *protocols.Spec {
	return []func() *protocols.Spec{
		func() *protocols.Spec { return protocols.VI(numCaches) },
		func() *protocols.Spec { return protocols.MSI(numCaches) },
		func() *protocols.Spec { return protocols.MESI(numCaches) },
		func() *protocols.Spec { return protocols.Origin(numCaches, true) },
	}
}

// EngineBench synthesizes VI, MSI, MESI, and Origin three ways — one
// worker (the historical sequential order), `workers` workers, and one
// more parallel run against the warm memo cache of the second — and
// reports wall-clock plus cache statistics for each protocol. Serial and
// parallel runs produce identical EFSMs (the engine guarantees worker-
// count invariance); only the wall clock may differ.
func EngineBench(numCaches, workers int) ([]EngineRow, error) {
	return EngineBenchCtx(context.Background(), numCaches, workers)
}

// EngineBenchCtx is EngineBench under a context. Any tracer on the
// context is kept, so engine runs show up in -trace output; the metrics
// registry is replaced per run so each row's counters stay isolated.
func EngineBenchCtx(ctx context.Context, numCaches, workers int) ([]EngineRow, error) {
	if workers < 1 {
		workers = 1
	}
	limits := synth.Limits{MaxSize: 12}
	var rows []EngineRow
	for _, mk := range engineSpecs(numCaches) {
		run := func(w int, cache *engine.Cache) (*core.Report, *obs.Registry, time.Duration, error) {
			spec := mk()
			// Each run gets a fresh metrics registry threaded through the
			// context; the row's work counters read it back directly.
			reg := obs.NewRegistry()
			rctx := obs.WithMetrics(ctx, reg)
			t0 := time.Now()
			rep, err := core.CompleteCtx(rctx, spec.Sys, spec.Vocab, spec.Snippets,
				core.Options{Limits: limits, Workers: w, Cache: cache})
			if err != nil {
				return nil, nil, 0, fmt.Errorf("bench: %s (workers=%d): %w", spec.Name, w, err)
			}
			return rep, reg, time.Since(t0), nil
		}

		_, _, serial, err := run(1, engine.NewCache())
		if err != nil {
			return nil, err
		}
		warmCache := engine.NewCache()
		rep, reg, par, err := run(workers, warmCache)
		if err != nil {
			return nil, err
		}
		repWarm, _, warm, err := run(workers, warmCache)
		if err != nil {
			return nil, err
		}

		name := mk().Name
		row := EngineRow{
			Protocol:    name,
			NumCaches:   numCaches,
			Jobs:        rep.Jobs,
			Workers:     workers,
			SerialTime:  serial,
			Parallel:    par,
			WarmTime:    warm,
			SerialMS:    ms(serial),
			ParallelMS:  ms(par),
			WarmMS:      ms(warm),
			Utilization: rep.Utilization,
			CacheHits:   repWarm.CacheHits,
			CacheMisses: repWarm.CacheMisses,

			SMTQueries:   reg.Get("smt.queries"),
			SATConflicts: reg.Get("sat.conflicts"),
			Candidates:   reg.Get("synth.candidates"),
		}
		if par > 0 {
			row.Speedup = float64(serial) / float64(par)
		}
		if lookups := repWarm.CacheHits + repWarm.CacheMisses; lookups > 0 {
			row.HitRate = float64(repWarm.CacheHits) / float64(lookups)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// FormatEngine renders the serial-vs-parallel comparison.
func FormatEngine(rows []EngineRow) string {
	var sb strings.Builder
	sb.WriteString("Engine: serial vs. parallel synthesis (identical EFSMs, wall-clock only)\n")
	fmt.Fprintf(&sb, "%-9s %7s %5s %8s | %9s %9s %8s %5s | %9s %6s %6s %8s | %8s %9s %10s\n",
		"Protocol", "Caches", "Jobs", "Workers",
		"Serial", "Parallel", "Speedup", "Util",
		"WarmCache", "Hits", "Miss", "HitRate",
		"SMT", "Conflicts", "Candidates")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-9s %7d %5d %8d | %9s %9s %7.2fx %5.2f | %9s %6d %6d %7.0f%% | %8d %9d %10d\n",
			r.Protocol, r.NumCaches, r.Jobs, r.Workers,
			r.SerialTime.Round(time.Millisecond), r.Parallel.Round(time.Millisecond),
			r.Speedup, r.Utilization,
			r.WarmTime.Round(time.Millisecond), r.CacheHits, r.CacheMisses, 100*r.HitRate,
			r.SMTQueries, r.SATConflicts, r.Candidates)
	}
	sb.WriteString("(speedup is serial/parallel; warm-cache reruns the parallel run against the\n populated memo cache, so its hit rate shows sub-problem reuse; SMT/Conflicts/\n Candidates come from the parallel run's metrics registry)\n")
	return sb.String()
}

// WriteEngineArtifact writes the comparison as a JSON artifact
// (BENCH_engine.json by convention) for machine consumption.
func WriteEngineArtifact(path string, workers int, rows []EngineRow) error {
	return WriteArtifact(path, NewHeader("engine_serial_vs_parallel", workers),
		map[string]any{"rows": rows})
}
