package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// Header is the shared preamble of every BENCH_*.json artifact: which
// benchmark produced it and the machine parallelism it ran with. One
// writer fills it for all artifacts, so consumers can dispatch on
// "benchmark" and normalize by "gomaxprocs" without per-file variation
// (GOMAXPROCS used to be recorded by some artifacts and hardcoded into
// their result structs; now the header carries it uniformly).
type Header struct {
	Benchmark  string `json:"benchmark"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	GoVersion  string `json:"go_version"`
	// Workers is the benchmark's own parallelism knob, when it has one.
	Workers int `json:"workers,omitempty"`
}

// NewHeader fills the machine fields.
func NewHeader(benchmark string, workers int) Header {
	return Header{
		Benchmark:  benchmark,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Workers:    workers,
	}
}

// WriteArtifact writes header ∪ body as one flat, indented JSON object
// (keys sorted). body must marshal to a JSON object; a body field named
// like a header field is a schema bug and fails loudly rather than
// silently shadowing.
func WriteArtifact(path string, hdr Header, body any) error {
	merged := map[string]json.RawMessage{}
	hb, err := json.Marshal(hdr)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(hb, &merged); err != nil {
		return err
	}
	bb, err := json.Marshal(body)
	if err != nil {
		return err
	}
	var bm map[string]json.RawMessage
	if err := json.Unmarshal(bb, &bm); err != nil {
		return fmt.Errorf("artifact body must be a JSON object: %w", err)
	}
	for k, v := range bm {
		if _, clash := merged[k]; clash {
			return fmt.Errorf("artifact body field %q collides with the shared header", k)
		}
		merged[k] = v
	}
	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
