package bench

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"transit/internal/engine"
	"transit/internal/expr"
	"transit/internal/synth"
)

// EnumModeStats is one enumeration mode's measured work on one Table 3
// problem. Time is the minimum over the configured trials — the standard
// estimator for the noise floor of short benchmarks.
type EnumModeStats struct {
	Time       time.Duration `json:"-"`
	TimeMS     float64       `json:"time_ms"`
	Enumerated int64         `json:"enumerated"`
	Kept       int64         `json:"kept"`
	Iterations int           `json:"iterations"`
	BankReuses int           `json:"bank_reuses"`
	Restarts   int           `json:"bank_fallbacks"`
	// InterpPruned counts candidates discarded by interpretation-indexed
	// pruning (0 when reduction is off for the mode).
	InterpPruned int64 `json:"interp_pruned"`
	// Unrealizable records whether the solve proved its hole impossible
	// (always false for rows that synthesize an answer; present so
	// artifact consumers need no schema change if a row ever regresses).
	Unrealizable bool `json:"unrealizable,omitempty"`
}

// EnumRow compares the sequential restart-per-round search (the seed
// Algorithm 1 path: one tier worker, no bank reuse, no interpretation
// reduction) against the tier-parallel bank-reusing interpretation-reduced
// search — and, when racing is enabled, against the engine's portfolio
// mode — on one Table 3 inference problem. All modes are answer-identical;
// the row quantifies the work and time the rebuilt search saves.
type EnumRow struct {
	Name        string        `json:"name"`
	Constraints int           `json:"constraints"`
	Found       string        `json:"found"`
	Seq         EnumModeStats `json:"sequential"`
	Par         EnumModeStats `json:"parallel_bank"`
	// Port is the portfolio-raced mode's stats (winner's counters);
	// omitted when racing was disabled for the run.
	Port *EnumModeStats `json:"portfolio,omitempty"`
	// EnumRatio is parallel-bank candidates enumerated / sequential — the
	// fraction of enumeration work the rebuilt search could not avoid
	// (values > 1 mean stale-pool fallbacks outweighed resume savings on
	// this row).
	EnumRatio float64 `json:"enum_ratio"`
	Speedup   float64 `json:"speedup"`
	// PortSpeedup is sequential time / portfolio time (0 when racing was
	// disabled).
	PortSpeedup float64 `json:"portfolio_speedup,omitempty"`
}

// EnumBenchResult is the whole comparison plus its summary statistic.
type EnumBenchResult struct {
	Workers int `json:"enum_workers"`
	// Portfolio is the configuration-race width of the portfolio column
	// (0 = column absent).
	Portfolio int `json:"portfolio,omitempty"`
	// GOMAXPROCS records the scheduler parallelism the run had available.
	// Tier-parallel speedup needs real cores: with GOMAXPROCS=1 the
	// worker fan-out timeshares one CPU and the measured speedup reflects
	// bank reuse and interpretation pruning alone. The artifact's shared
	// header carries it on the wire; this field only feeds the text
	// rendering.
	GOMAXPROCS int       `json:"-"`
	Trials     int       `json:"trials"`
	Rows       []EnumRow `json:"rows"`
	// GeomeanSpeedup is the geometric mean of the per-row parallel-bank
	// speedups — the acceptance metric for the rebuilt search.
	GeomeanSpeedup float64 `json:"geomean_speedup"`
	// GeomeanPortfolioSpeedup is the same statistic for the portfolio
	// column (0 when racing was disabled).
	GeomeanPortfolioSpeedup float64 `json:"geomean_portfolio_speedup,omitempty"`
}

// EnumBench runs the short Table 3 rows through the modes.
func EnumBench(workers, trials, portfolio int) (*EnumBenchResult, error) {
	return EnumBenchCtx(context.Background(), workers, trials, portfolio)
}

// EnumBenchCtx is EnumBench under a context. Every trial of every mode is
// checked for answer identity against the sequential reference and for
// semantic consistency by brute force, so a determinism regression fails
// the benchmark instead of skewing it. portfolio >= 2 adds a third column
// racing that many engine configurations per solve; 0/1 omits it.
func EnumBenchCtx(ctx context.Context, workers, trials, portfolio int) (*EnumBenchResult, error) {
	if workers < 1 {
		workers = 1
	}
	if trials < 1 {
		trials = 3
	}
	if portfolio < 2 {
		portfolio = 0
	}
	res := &EnumBenchResult{Workers: workers, Portfolio: portfolio,
		GOMAXPROCS: runtime.GOMAXPROCS(0), Trials: trials}
	logSum := 0.0
	portLogSum := 0.0
	for _, b := range Table3Benchmarks() {
		if b.Long {
			// The 30-minute row would dominate the run; the short rows
			// already cover every vocabulary the suite uses.
			continue
		}
		u, err := expr.NewUniverseWidth(3, 4)
		if err != nil {
			return nil, err
		}
		prob, exs := b.Build(u)
		base := synth.Limits{MaxSize: b.ExpectedSize + 2, Timeout: 2 * time.Minute}
		seqLimits := base
		seqLimits.EnumWorkers = 1
		seqLimits.NoBankReuse = true
		seqLimits.NoInterpReduction = true
		parLimits := base
		parLimits.EnumWorkers = workers

		row := EnumRow{Name: b.Name, Constraints: len(exs)}
		collect := func(st *EnumModeStats, tr int, d time.Duration, stats synth.Stats) {
			if tr == 0 || d < st.Time {
				st.Time = d
			}
			st.Enumerated = stats.Concrete.Enumerated
			st.Kept = stats.Concrete.Kept
			st.Iterations = stats.Iterations
			st.BankReuses = stats.BankReuses
			st.Restarts = stats.Concrete.Restarts
			st.InterpPruned = stats.Concrete.InterpPruned
			st.Unrealizable = stats.Unrealizable
		}
		check := func(found *string, e expr.Expr) error {
			if *found == "" {
				*found = e.String()
				return verifyConsistent(prob, e, exs)
			}
			if e.String() != *found {
				return fmt.Errorf("nondeterministic answer: %s vs %s", e, *found)
			}
			return nil
		}
		run := func(limits synth.Limits) (EnumModeStats, string, error) {
			var st EnumModeStats
			var found string
			for tr := 0; tr < trials; tr++ {
				t0 := time.Now()
				e, stats, err := synth.SolveConcolicCtx(ctx, prob, exs, limits)
				d := time.Since(t0)
				if err != nil {
					return st, "", fmt.Errorf("bench: %s: %w", b.Name, err)
				}
				collect(&st, tr, d, stats)
				if err := check(&found, e); err != nil {
					return st, "", fmt.Errorf("bench: %s: %w", b.Name, err)
				}
			}
			st.TimeMS = ms(st.Time)
			return st, found, nil
		}
		// The portfolio mode goes through the engine (the race lives one
		// layer above the raw solver); a fresh cacheless engine per trial
		// keeps every trial a cold solve.
		runPortfolio := func(limits synth.Limits) (EnumModeStats, string, error) {
			var st EnumModeStats
			var found string
			for tr := 0; tr < trials; tr++ {
				eng := engine.New(engine.Config{EnumWorkers: workers, Portfolio: portfolio})
				t0 := time.Now()
				e, stats, _, err := eng.SolveConcolic(ctx, engine.SolveSpec{
					Problem: prob, Examples: exs, Limits: limits})
				d := time.Since(t0)
				if err != nil {
					return st, "", fmt.Errorf("bench: %s: portfolio: %w", b.Name, err)
				}
				collect(&st, tr, d, stats)
				if err := check(&found, e); err != nil {
					return st, "", fmt.Errorf("bench: %s: portfolio: %w", b.Name, err)
				}
			}
			st.TimeMS = ms(st.Time)
			return st, found, nil
		}
		seq, seqFound, err := run(seqLimits)
		if err != nil {
			return nil, err
		}
		par, parFound, err := run(parLimits)
		if err != nil {
			return nil, err
		}
		if seqFound != parFound {
			return nil, fmt.Errorf("bench: %s: mode answers differ: seq %s, par %s",
				b.Name, seqFound, parFound)
		}
		row.Found = seqFound
		row.Seq, row.Par = seq, par
		if seq.Enumerated > 0 {
			row.EnumRatio = float64(par.Enumerated) / float64(seq.Enumerated)
		}
		if par.Time > 0 {
			row.Speedup = float64(seq.Time) / float64(par.Time)
		}
		logSum += math.Log(row.Speedup)
		if portfolio >= 2 {
			port, portFound, err := runPortfolio(parLimits)
			if err != nil {
				return nil, err
			}
			if portFound != seqFound {
				return nil, fmt.Errorf("bench: %s: portfolio answer differs: seq %s, portfolio %s",
					b.Name, seqFound, portFound)
			}
			row.Port = &port
			if port.Time > 0 {
				row.PortSpeedup = float64(seq.Time) / float64(port.Time)
			}
			portLogSum += math.Log(row.PortSpeedup)
		}
		res.Rows = append(res.Rows, row)
	}
	if len(res.Rows) > 0 {
		res.GeomeanSpeedup = math.Exp(logSum / float64(len(res.Rows)))
		if portfolio >= 2 {
			res.GeomeanPortfolioSpeedup = math.Exp(portLogSum / float64(len(res.Rows)))
		}
	}
	return res, nil
}

// FormatEnum renders the mode comparison.
func FormatEnum(res *EnumBenchResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Enumeration: sequential restart-per-round vs. %d-worker interpretation-reduced bank-reusing search (identical answers, min of %d trials, GOMAXPROCS=%d)\n",
		res.Workers, res.Trials, res.GOMAXPROCS)
	fmt.Fprintf(&sb, "%-22s %4s | %9s %9s %5s | %9s %9s %8s %5s %6s %5s | %7s %8s",
		"Benchmark", "Cons",
		"SeqTime", "Enum", "Iter",
		"ParTime", "Enum", "Pruned", "Iter", "Reuse", "Fall",
		"EnumR", "Speedup")
	if res.Portfolio >= 2 {
		fmt.Fprintf(&sb, " | %9s %8s", "PortTime", "PortSpd")
	}
	sb.WriteByte('\n')
	for _, r := range res.Rows {
		fmt.Fprintf(&sb, "%-22s %4d | %9s %9d %5d | %9s %9d %8d %5d %6d %5d | %6.0f%% %7.2fx",
			r.Name, r.Constraints,
			r.Seq.Time.Round(time.Microsecond*100), r.Seq.Enumerated, r.Seq.Iterations,
			r.Par.Time.Round(time.Microsecond*100), r.Par.Enumerated, r.Par.InterpPruned,
			r.Par.Iterations, r.Par.BankReuses, r.Par.Restarts,
			100*r.EnumRatio, r.Speedup)
		if r.Port != nil {
			fmt.Fprintf(&sb, " | %9s %7.2fx",
				r.Port.Time.Round(time.Microsecond*100), r.PortSpeedup)
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "geometric-mean speedup: %.2fx\n", res.GeomeanSpeedup)
	if res.Portfolio >= 2 {
		fmt.Fprintf(&sb, "geometric-mean portfolio speedup (%d-way race): %.2fx\n",
			res.Portfolio, res.GeomeanPortfolioSpeedup)
	}
	sb.WriteString("(EnumR is parallel-bank/sequential candidates enumerated — the search work\n the rebuilt search could not avoid; Pruned counts candidates discarded by\n interpretation-indexed signatures; Reuse counts rounds resumed from the\n bank, Fall rounds whose stale pools forced a restart; answers are identical\n in every mode and trial)\n")
	return sb.String()
}

// WriteEnumArtifact writes the comparison as a JSON artifact
// (BENCH_enum.json by convention) for machine consumption. The shared
// header supplies the scheduler parallelism the result struct used to
// duplicate.
func WriteEnumArtifact(path string, res *EnumBenchResult) error {
	return WriteArtifact(path, NewHeader("enum_sequential_vs_parallel_bank", res.Workers), res)
}
