package bench

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"transit/internal/expr"
	"transit/internal/synth"
)

// EnumModeStats is one enumeration mode's measured work on one Table 3
// problem. Time is the minimum over the configured trials — the standard
// estimator for the noise floor of short benchmarks.
type EnumModeStats struct {
	Time       time.Duration `json:"-"`
	TimeMS     float64       `json:"time_ms"`
	Enumerated int64         `json:"enumerated"`
	Kept       int64         `json:"kept"`
	Iterations int           `json:"iterations"`
	BankReuses int           `json:"bank_reuses"`
	Restarts   int           `json:"bank_fallbacks"`
}

// EnumRow compares the sequential restart-per-round search (the seed
// Algorithm 1 path: one tier worker, no bank reuse) against the
// tier-parallel bank-reusing search on one Table 3 inference problem.
// Both modes are answer-identical; the row quantifies the work and time
// the rebuilt search saves.
type EnumRow struct {
	Name        string        `json:"name"`
	Constraints int           `json:"constraints"`
	Found       string        `json:"found"`
	Seq         EnumModeStats `json:"sequential"`
	Par         EnumModeStats `json:"parallel_bank"`
	// EnumRatio is parallel-bank candidates enumerated / sequential — the
	// fraction of enumeration work bank reuse could not avoid (values > 1
	// mean stale-pool fallbacks outweighed resume savings on this row).
	EnumRatio float64 `json:"enum_ratio"`
	Speedup   float64 `json:"speedup"`
}

// EnumBenchResult is the whole comparison plus its summary statistic.
type EnumBenchResult struct {
	Workers int `json:"enum_workers"`
	// GOMAXPROCS records the scheduler parallelism the run had available.
	// Tier-parallel speedup needs real cores: with GOMAXPROCS=1 the
	// worker fan-out timeshares one CPU and the measured speedup reflects
	// bank reuse alone. The artifact's shared header carries it on the
	// wire; this field only feeds the text rendering.
	GOMAXPROCS int       `json:"-"`
	Trials     int       `json:"trials"`
	Rows       []EnumRow `json:"rows"`
	// GeomeanSpeedup is the geometric mean of the per-row speedups — the
	// acceptance metric for the rebuilt search.
	GeomeanSpeedup float64 `json:"geomean_speedup"`
}

// EnumBench runs the short Table 3 rows through both modes.
func EnumBench(workers, trials int) (*EnumBenchResult, error) {
	return EnumBenchCtx(context.Background(), workers, trials)
}

// EnumBenchCtx is EnumBench under a context. Every trial of every mode is
// checked for answer identity against the sequential reference and for
// semantic consistency by brute force, so a determinism regression fails
// the benchmark instead of skewing it.
func EnumBenchCtx(ctx context.Context, workers, trials int) (*EnumBenchResult, error) {
	if workers < 1 {
		workers = 1
	}
	if trials < 1 {
		trials = 3
	}
	res := &EnumBenchResult{Workers: workers, GOMAXPROCS: runtime.GOMAXPROCS(0), Trials: trials}
	logSum := 0.0
	for _, b := range Table3Benchmarks() {
		if b.Long {
			// The 30-minute row would dominate the run; the short rows
			// already cover every vocabulary the suite uses.
			continue
		}
		u, err := expr.NewUniverseWidth(3, 4)
		if err != nil {
			return nil, err
		}
		prob, exs := b.Build(u)
		base := synth.Limits{MaxSize: b.ExpectedSize + 2, Timeout: 2 * time.Minute}
		seqLimits := base
		seqLimits.EnumWorkers = 1
		seqLimits.NoBankReuse = true
		parLimits := base
		parLimits.EnumWorkers = workers

		row := EnumRow{Name: b.Name, Constraints: len(exs)}
		run := func(limits synth.Limits) (EnumModeStats, string, error) {
			var st EnumModeStats
			var found string
			for tr := 0; tr < trials; tr++ {
				t0 := time.Now()
				e, stats, err := synth.SolveConcolicCtx(ctx, prob, exs, limits)
				d := time.Since(t0)
				if err != nil {
					return st, "", fmt.Errorf("bench: %s: %w", b.Name, err)
				}
				if tr == 0 || d < st.Time {
					st.Time = d
				}
				st.Enumerated = stats.Concrete.Enumerated
				st.Kept = stats.Concrete.Kept
				st.Iterations = stats.Iterations
				st.BankReuses = stats.BankReuses
				st.Restarts = stats.Concrete.Restarts
				if found == "" {
					found = e.String()
					if err := verifyConsistent(prob, e, exs); err != nil {
						return st, "", fmt.Errorf("bench: %s: %w", b.Name, err)
					}
				} else if e.String() != found {
					return st, "", fmt.Errorf("bench: %s: nondeterministic answer: %s vs %s",
						b.Name, e, found)
				}
			}
			st.TimeMS = ms(st.Time)
			return st, found, nil
		}
		seq, seqFound, err := run(seqLimits)
		if err != nil {
			return nil, err
		}
		par, parFound, err := run(parLimits)
		if err != nil {
			return nil, err
		}
		if seqFound != parFound {
			return nil, fmt.Errorf("bench: %s: mode answers differ: seq %s, par %s",
				b.Name, seqFound, parFound)
		}
		row.Found = seqFound
		row.Seq, row.Par = seq, par
		if seq.Enumerated > 0 {
			row.EnumRatio = float64(par.Enumerated) / float64(seq.Enumerated)
		}
		if par.Time > 0 {
			row.Speedup = float64(seq.Time) / float64(par.Time)
		}
		logSum += math.Log(row.Speedup)
		res.Rows = append(res.Rows, row)
	}
	if len(res.Rows) > 0 {
		res.GeomeanSpeedup = math.Exp(logSum / float64(len(res.Rows)))
	}
	return res, nil
}

// FormatEnum renders the sequential-vs-parallel-bank comparison.
func FormatEnum(res *EnumBenchResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Enumeration: sequential restart-per-round vs. %d-worker bank-reusing search (identical answers, min of %d trials, GOMAXPROCS=%d)\n",
		res.Workers, res.Trials, res.GOMAXPROCS)
	fmt.Fprintf(&sb, "%-22s %4s | %9s %9s %5s | %9s %9s %5s %6s %5s | %7s %8s\n",
		"Benchmark", "Cons",
		"SeqTime", "Enum", "Iter",
		"ParTime", "Enum", "Iter", "Reuse", "Fall",
		"EnumR", "Speedup")
	for _, r := range res.Rows {
		fmt.Fprintf(&sb, "%-22s %4d | %9s %9d %5d | %9s %9d %5d %6d %5d | %6.0f%% %7.2fx\n",
			r.Name, r.Constraints,
			r.Seq.Time.Round(time.Microsecond*100), r.Seq.Enumerated, r.Seq.Iterations,
			r.Par.Time.Round(time.Microsecond*100), r.Par.Enumerated, r.Par.Iterations,
			r.Par.BankReuses, r.Par.Restarts,
			100*r.EnumRatio, r.Speedup)
	}
	fmt.Fprintf(&sb, "geometric-mean speedup: %.2fx\n", res.GeomeanSpeedup)
	sb.WriteString("(EnumR is parallel-bank/sequential candidates enumerated — the search work\n bank reuse could not avoid; Reuse counts rounds resumed from the bank, Fall\n rounds whose stale pools forced a restart; answers are identical in every\n mode and trial)\n")
	return sb.String()
}

// WriteEnumArtifact writes the comparison as a JSON artifact
// (BENCH_enum.json by convention) for machine consumption. The shared
// header supplies the scheduler parallelism the result struct used to
// duplicate.
func WriteEnumArtifact(path string, res *EnumBenchResult) error {
	return WriteArtifact(path, NewHeader("enum_sequential_vs_parallel_bank", res.Workers), res)
}
