// Package bench regenerates every table and figure of the paper's
// evaluation: the Table 2 CEGIS trace, the Table 3 expression-inference
// benchmarks, the Figure 5 pruned-vs-exhaustive enumeration comparison,
// the Table 4 protocol-synthesis throughput numbers, and the Table 5
// case-study workflow metrics. The cmd/transit-bench CLI and the
// repository's testing.B benchmarks both drive this package.
package bench

import (
	"context"
	"fmt"
	"time"

	"transit/internal/core"
	"transit/internal/efsm"
	"transit/internal/expr"
	"transit/internal/mc"
	"transit/internal/protocols"
	"transit/internal/synth"
)

// Table2Row is one CEGIS iteration of the max(a, b) walk-through.
type Table2Row struct {
	Iter       int
	Candidate  string
	Witness    string // empty when accepted
	NewExample string // empty when accepted
}

// Table2 reruns the paper's Table 2: SolveConcolic on
// true ⇒ (o ≥ a ∧ o ≥ b ∧ (o = a ∨ o = b)) with the coherence vocabulary,
// returning the per-iteration trace and the final expression.
func Table2() ([]Table2Row, string, synth.Stats, error) {
	return Table2Ctx(context.Background())
}

// Table2Ctx is Table2 under a context (cancellation plus observability
// threading; see the obs package).
func Table2Ctx(ctx context.Context) ([]Table2Row, string, synth.Stats, error) {
	u := expr.NewUniverse(3)
	voc := expr.CoherenceVocabulary(u, expr.CoherenceOptions{})
	a, b := expr.V("a", expr.IntType), expr.V("b", expr.IntType)
	o := expr.V("o", expr.IntType)
	prob := synth.Problem{U: u, Vocab: voc, Vars: []*expr.Var{a, b}, Output: o}
	spec := []synth.ConcolicExample{{
		Pre: expr.True(),
		Post: expr.And(expr.Ge(o, a), expr.Ge(o, b),
			expr.Or(expr.Eq(o, a), expr.Eq(o, b))),
	}}
	e, stats, err := synth.SolveConcolicCtx(ctx, prob, spec, synth.Limits{MaxSize: 8})
	if err != nil {
		return nil, "", stats, err
	}
	rows := make([]Table2Row, 0, len(stats.Trace))
	for i, rec := range stats.Trace {
		row := Table2Row{Iter: i + 1, Candidate: rec.Candidate.String()}
		if rec.Witness != nil {
			row.Witness = fmt.Sprint(rec.Witness)
			row.NewExample = fmt.Sprintf("(%v, o:%v)", rec.NewExample.S, rec.NewExample.Out)
		}
		rows = append(rows, row)
	}
	return rows, e.String(), stats, nil
}

// Table4Row is one protocol's snippet-based-design throughput record.
type Table4Row struct {
	Protocol     string
	NumCaches    int
	Scenarios    int
	UpdatesSynth int
	UpdateExprs  int64
	UpdateTime   time.Duration
	GuardsSynth  int
	GuardExprs   int64
	GuardTime    time.Duration
	SynthTime    time.Duration
	States       int
	CheckTime    time.Duration
}

// CheckKnobs carries the model checker's tuning knobs (frontier worker
// fan-out and PID-symmetry reduction) through the table benchmarks that
// verify what they synthesize. The zero value reproduces the historical
// behaviour: one worker, no reduction.
type CheckKnobs struct {
	Workers  int
	Symmetry bool
}

// Table4 transcribes the GEMS protocols (VI and MSI) into snippets,
// synthesizes them, and model checks the result, reporting the paper's
// throughput metrics.
func Table4(numCaches int) ([]Table4Row, error) {
	return Table4Ctx(context.Background(), numCaches, CheckKnobs{})
}

// Table4Ctx is Table4 under a context (cancellation plus observability
// threading).
func Table4Ctx(ctx context.Context, numCaches int, knobs CheckKnobs) ([]Table4Row, error) {
	specs := []*protocols.Spec{protocols.VI(numCaches), protocols.MSI(numCaches)}
	var rows []Table4Row
	for _, spec := range specs {
		rep, err := core.CompleteCtx(ctx, spec.Sys, spec.Vocab, spec.Snippets,
			core.Options{Limits: synth.Limits{MaxSize: 12}})
		if err != nil {
			return nil, fmt.Errorf("bench: %s synthesis: %w", spec.Name, err)
		}
		rt, err := efsm.NewRuntime(spec.Sys)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		res, err := mc.CheckCtx(ctx, rt, spec.Invariants, mc.Options{
			MaxStates: 8_000_000, CheckDeadlock: true,
			Workers: knobs.Workers, SymmetryReduction: knobs.Symmetry,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: %s model check: %w", spec.Name, err)
		}
		if !res.OK {
			return nil, fmt.Errorf("bench: %s violates invariants:\n%v", spec.Name, res.Violation)
		}
		rows = append(rows, Table4Row{
			Protocol:     spec.Name,
			NumCaches:    numCaches,
			Scenarios:    rep.Snippets,
			UpdatesSynth: rep.UpdatesSynthesized,
			UpdateExprs:  rep.UpdateExprsTried,
			UpdateTime:   rep.UpdateTime,
			GuardsSynth:  rep.GuardsSynthesized,
			GuardExprs:   rep.GuardExprsTried,
			GuardTime:    rep.GuardTime,
			SynthTime:    rep.Elapsed,
			States:       res.States,
			CheckTime:    time.Since(t0),
		})
	}
	return rows, nil
}

// Table5Row is one case study's workflow metrics.
type Table5Row struct {
	Study           string
	InitialSnippets int
	AddedSnippets   int
	Iterations      int
	TotalSnippets   int
	Transitions     int
	FinalStates     int
	Elapsed         time.Duration
}

// Table5 replays the three case studies and reports the effectiveness
// metrics of the iterative methodology.
func Table5(numCaches int) ([]Table5Row, error) {
	return Table5Ctx(context.Background(), numCaches, CheckKnobs{})
}

// Table5Ctx is Table5 under a context (cancellation plus observability
// threading). The knobs override each case study's model-checking
// options, so the scripted debugging loops verify with the same checker
// configuration the CLI was asked for.
func Table5Ctx(ctx context.Context, numCaches int, knobs CheckKnobs) ([]Table5Row, error) {
	studies := []core.CaseStudy{
		protocols.CaseStudyA(numCaches),
		protocols.CaseStudyB(numCaches),
		protocols.CaseStudyC(numCaches),
	}
	var rows []Table5Row
	for _, cs := range studies {
		if knobs.Workers > 0 {
			cs.MCOpts.Workers = knobs.Workers
		}
		cs.MCOpts.SymmetryReduction = knobs.Symmetry
		res, err := core.RunCaseStudyCtx(ctx, cs)
		if err != nil {
			return nil, fmt.Errorf("bench: case study %s: %w", cs.Name, err)
		}
		row := Table5Row{
			Study:           res.Name,
			InitialSnippets: len(cs.Initial),
			AddedSnippets:   res.TotalSnippets - len(cs.Initial),
			Iterations:      len(res.Iterations),
			TotalSnippets:   res.TotalSnippets,
			Transitions:     res.FinalTransitions,
			FinalStates:     res.FinalStates,
			Elapsed:         res.Elapsed,
		}
		rows = append(rows, row)
	}
	return rows, nil
}
