package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"transit/internal/server"
)

// TierStats aggregates the latencies of the requests one cache tier
// served within a pass.
type TierStats struct {
	Requests int     `json:"requests"`
	MeanMS   float64 `json:"mean_ms"`
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	MaxMS    float64 `json:"max_ms"`
}

// ServePassStats is one pass of the client load over the request set.
type ServePassStats struct {
	Requests    int     `json:"requests"`
	Errors      int     `json:"errors"`
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	WallMS      float64 `json:"wall_ms"`
	Throughput  float64 `json:"throughput_rps"`
	MeanMS      float64 `json:"mean_ms"`
	P50MS       float64 `json:"p50_ms"`
	P95MS       float64 `json:"p95_ms"`
	MaxMS       float64 `json:"max_ms"`

	// Tiers splits the latencies by the cache tier that served each
	// request (mem / disk / miss, from the job envelope), so the artifact
	// shows what each tier costs a client end to end.
	Tiers map[string]TierStats `json:"tiers,omitempty"`
}

// ServeBenchResult compares a cold pass (every request is a distinct
// problem, so the server's memo cache starts empty for each) against a
// warm pass resubmitting the same problems, which the server answers
// from the shared cache. The latency gap is the price of synthesis the
// persistent cache removes.
type ServeBenchResult struct {
	URL      string         `json:"url"`
	Clients  int            `json:"clients"`
	Requests int            `json:"requests"`
	Cold     ServePassStats `json:"cold"`
	Warm     ServePassStats `json:"warm"`
	// WarmSpeedup is cold p50 / warm p50 — the end-to-end latency win a
	// client sees when the answer is already in the cache.
	WarmSpeedup float64 `json:"warm_speedup"`
}

// serveProblems builds n distinct solve requests of near-identical cost.
// Distinctness comes from alternating two base problems (max and min of
// two ints) and bumping MaxIters, which is part of the engine's canonical
// key but never reached by these tiny problems — so every request misses
// a cold cache while doing the same amount of search work.
func serveProblems(n int) []server.JobRequest {
	reqs := make([]server.JobRequest, 0, n)
	for i := 0; i < n; i++ {
		post := "o >= a & o >= b & (o = a | o = b)" // max(a, b)
		if i%2 == 1 {
			post = "a >= o & b >= o & (o = a | o = b)" // min(a, b)
		}
		reqs = append(reqs, server.JobRequest{
			Kind: "solve",
			Solve: &server.SolveRequest{
				NumCaches: 3,
				Vars: []server.VarDecl{
					{Name: "a", Type: "Int"},
					{Name: "b", Type: "Int"},
				},
				Output:   server.VarDecl{Name: "o", Type: "Int"},
				Examples: []server.ExampleDecl{{Post: post}},
				MaxSize:  8,
				MaxIters: 32 + i/2,
			},
		})
	}
	return reqs
}

// submitAndWait posts one job and polls it to a terminal state, returning
// the terminal envelope. Latency is submit-to-terminal as the client
// sees it, poll interval included — the number a real caller experiences.
func submitAndWait(ctx context.Context, hc *http.Client, baseURL, client string, req server.JobRequest) (*server.JobEnvelope, error) {
	body, err := json.Marshal(&req)
	if err != nil {
		return nil, err
	}
	post, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	post.Header.Set("Content-Type", "application/json")
	post.Header.Set("X-Transit-Client", client)
	resp, err := hc.Do(post)
	if err != nil {
		return nil, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	var env server.JobEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, err
	}
	for !terminalStatus(env.Status) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
		get, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/jobs/"+env.ID, nil)
		if err != nil {
			return nil, err
		}
		get.Header.Set("X-Transit-Client", client)
		resp, err := hc.Do(get)
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("poll %s: %s: %s", env.ID, resp.Status, strings.TrimSpace(string(data)))
		}
		if err := json.Unmarshal(data, &env); err != nil {
			return nil, err
		}
	}
	if env.Status != "done" {
		return nil, fmt.Errorf("job %s ended %s: %s", env.ID, env.Status, env.Error)
	}
	return &env, nil
}

func terminalStatus(s string) bool {
	return s == "done" || s == "failed" || s == "canceled"
}

// runPass drives the request set through `clients` concurrent workers
// (round-robin assignment) and aggregates the latencies.
func runPass(ctx context.Context, hc *http.Client, baseURL string, clients int, reqs []server.JobRequest) (ServePassStats, error) {
	latencies := make([]float64, len(reqs))
	tiers := make([]string, len(reqs))
	var (
		mu    sync.Mutex
		stats ServePassStats
		first error
		wg    sync.WaitGroup
	)
	stats.Requests = len(reqs)
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			name := fmt.Sprintf("bench-%d", c)
			for i := c; i < len(reqs); i += clients {
				start := time.Now()
				env, err := submitAndWait(ctx, hc, baseURL, name, reqs[i])
				d := time.Since(start)
				mu.Lock()
				if err != nil {
					stats.Errors++
					if first == nil {
						first = fmt.Errorf("bench: request %d: %w", i, err)
					}
				} else {
					latencies[i] = ms(d)
					tiers[i] = env.CacheTier
					stats.CacheHits += env.CacheHits
					stats.CacheMisses += env.CacheMisses
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if first != nil {
		return stats, first
	}
	wall := time.Since(t0)
	stats.WallMS = ms(wall)
	if wall > 0 {
		stats.Throughput = float64(len(reqs)) / wall.Seconds()
	}
	stats.Tiers = tierStats(latencies, tiers)
	sort.Float64s(latencies)
	sum := 0.0
	for _, l := range latencies {
		sum += l
	}
	stats.MeanMS = sum / float64(len(latencies))
	stats.P50MS = percentile(latencies, 0.50)
	stats.P95MS = percentile(latencies, 0.95)
	stats.MaxMS = latencies[len(latencies)-1]
	return stats, nil
}

// tierStats groups request latencies by the cache tier that served them
// (pre-tier servers report no tier; those requests group under "none").
func tierStats(latencies []float64, tiers []string) map[string]TierStats {
	byTier := map[string][]float64{}
	for i, tier := range tiers {
		if tier == "" {
			tier = "none"
		}
		byTier[tier] = append(byTier[tier], latencies[i])
	}
	out := make(map[string]TierStats, len(byTier))
	for tier, ls := range byTier {
		sort.Float64s(ls)
		sum := 0.0
		for _, l := range ls {
			sum += l
		}
		out[tier] = TierStats{
			Requests: len(ls),
			MeanMS:   sum / float64(len(ls)),
			P50MS:    percentile(ls, 0.50),
			P95MS:    percentile(ls, 0.95),
			MaxMS:    ls[len(ls)-1],
		}
	}
	return out
}

// percentile reads the p-quantile from sorted values (nearest-rank).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// ServeBenchCtx load-tests a running `transit serve` instance at baseURL:
// a cold pass of `requests` distinct solve problems across `clients`
// concurrent clients, then a warm pass resubmitting the same problems.
// With a persistent -cache-dir the warm numbers survive server restarts,
// which is the point of the disk tier.
func ServeBenchCtx(ctx context.Context, baseURL string, clients, requests int) (*ServeBenchResult, error) {
	if clients < 1 {
		clients = 1
	}
	if requests < 1 {
		requests = 8
	}
	baseURL = strings.TrimRight(baseURL, "/")
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	hc := &http.Client{Timeout: 2 * time.Minute}
	reqs := serveProblems(requests)
	res := &ServeBenchResult{URL: baseURL, Clients: clients, Requests: requests}
	var err error
	if res.Cold, err = runPass(ctx, hc, baseURL, clients, reqs); err != nil {
		return nil, err
	}
	if res.Warm, err = runPass(ctx, hc, baseURL, clients, reqs); err != nil {
		return nil, err
	}
	if res.Warm.P50MS > 0 {
		res.WarmSpeedup = res.Cold.P50MS / res.Warm.P50MS
	}
	return res, nil
}

// FormatServe renders the cold-vs-warm comparison.
func FormatServe(res *ServeBenchResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Serve: %d requests through %d concurrent clients against %s\n",
		res.Requests, res.Clients, res.URL)
	fmt.Fprintf(&sb, "%-5s | %8s %6s | %8s %8s %8s %8s | %10s | %5s %5s\n",
		"Pass", "Reqs", "Errs",
		"Mean", "p50", "p95", "Max",
		"Thruput", "Hits", "Miss")
	row := func(name string, p ServePassStats) {
		fmt.Fprintf(&sb, "%-5s | %8d %6d | %7.1fms %6.1fms %6.1fms %6.1fms | %8.1f/s | %5d %5d\n",
			name, p.Requests, p.Errors,
			p.MeanMS, p.P50MS, p.P95MS, p.MaxMS,
			p.Throughput, p.CacheHits, p.CacheMisses)
		// Per-tier breakdown in a stable order (fastest tier first).
		for _, tier := range []string{"mem", "disk", "miss", "none"} {
			t, ok := p.Tiers[tier]
			if !ok {
				continue
			}
			fmt.Fprintf(&sb, "%-5s | %8d %6s | %7.1fms %6.1fms %6.1fms %6.1fms |\n",
				"·"+tier, t.Requests, "",
				t.MeanMS, t.P50MS, t.P95MS, t.MaxMS)
		}
	}
	row("cold", res.Cold)
	row("warm", res.Warm)
	fmt.Fprintf(&sb, "warm-cache p50 speedup: %.2fx\n", res.WarmSpeedup)
	sb.WriteString("(cold submits distinct problems so every job synthesizes; warm resubmits the\n same problems and the server answers from the shared memo cache — with a\n persistent -cache-dir the warm numbers survive server restarts)\n")
	return sb.String()
}

// WriteServeArtifact writes the comparison as a JSON artifact
// (BENCH_serve.json by convention) for machine consumption.
func WriteServeArtifact(path string, res *ServeBenchResult) error {
	return WriteArtifact(path, NewHeader("serve_client_load", res.Clients), res)
}
