package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// This file implements `transit obs bench-diff`: a schema-light
// comparison of two BENCH_*.json artifacts. Rather than one parser per
// benchmark family, the differ walks both JSON trees in parallel —
// objects by sorted key, arrays element-wise with elements matched by
// their "name" field when they have one — and compares every numeric
// leaf whose key ends in "_ms" (the shared timing convention of all
// artifacts). That makes it future-proof against new benchmark bodies as
// long as they keep the header schema and the _ms suffix.

// DiffRow is one compared timing leaf.
type DiffRow struct {
	Path string  // e.g. "rows[max2-guarded].sequential.time_ms"
	Old  float64 // milliseconds in the old artifact
	New  float64 // milliseconds in the new artifact
	// Ratio is New/Old: > 1 is a regression, < 1 an improvement.
	Ratio float64
}

// DiffResult is the full comparison.
type DiffResult struct {
	Benchmark string // from the shared header; "?" when the two disagree
	Rows      []DiffRow
	// Geomean is the geometric mean of the row ratios (rows with a
	// non-positive side are excluded); 1.0 when no rows are comparable.
	Geomean float64
	// OldOnly / NewOnly are timing leaves present in just one artifact
	// (benchmark shape drift) — reported, never failed on.
	OldOnly []string
	NewOnly []string
}

// DiffArtifacts compares two artifacts in the shared header schema.
func DiffArtifacts(oldData, newData []byte) (*DiffResult, error) {
	var o, n map[string]any
	if err := json.Unmarshal(oldData, &o); err != nil {
		return nil, fmt.Errorf("bench-diff: old artifact: %w", err)
	}
	if err := json.Unmarshal(newData, &n); err != nil {
		return nil, fmt.Errorf("bench-diff: new artifact: %w", err)
	}
	d := &DiffResult{Geomean: 1}
	ob, _ := o["benchmark"].(string)
	nb, _ := n["benchmark"].(string)
	if ob != nb {
		return nil, fmt.Errorf("bench-diff: artifacts are different benchmarks: %q vs %q", ob, nb)
	}
	d.Benchmark = ob
	diffNode(d, "", o, n)
	logSum, count := 0.0, 0
	for _, r := range d.Rows {
		if r.Old > 0 && r.New > 0 {
			logSum += math.Log(r.Ratio)
			count++
		}
	}
	if count > 0 {
		d.Geomean = math.Exp(logSum / float64(count))
	}
	return d, nil
}

// diffNode walks both trees in lockstep.
func diffNode(d *DiffResult, path string, o, n any) {
	switch ov := o.(type) {
	case map[string]any:
		nv, ok := n.(map[string]any)
		if !ok {
			markOnly(d, path, o, n)
			return
		}
		keys := make([]string, 0, len(ov))
		for k := range ov {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			child := joinPath(path, k)
			if nc, ok := nv[k]; ok {
				diffNode(d, child, ov[k], nc)
			} else {
				markOnly(d, child, ov[k], nil)
			}
		}
		nkeys := make([]string, 0, len(nv))
		for k := range nv {
			if _, ok := ov[k]; !ok {
				nkeys = append(nkeys, k)
			}
		}
		sort.Strings(nkeys)
		for _, k := range nkeys {
			markOnly(d, joinPath(path, k), nil, nv[k])
		}
	case []any:
		nv, ok := n.([]any)
		if !ok {
			markOnly(d, path, o, n)
			return
		}
		// Elements with a "name" field match by name (rows may be
		// reordered or added between runs); anonymous elements by index.
		oNamed, oAnon := splitNamed(ov)
		nNamed, nAnon := splitNamed(nv)
		names := make([]string, 0, len(oNamed))
		for name := range oNamed {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			child := fmt.Sprintf("%s[%s]", path, name)
			if ne, ok := nNamed[name]; ok {
				diffNode(d, child, oNamed[name], ne)
			} else {
				markOnly(d, child, oNamed[name], nil)
			}
		}
		nNames := make([]string, 0, len(nNamed))
		for name := range nNamed {
			if _, ok := oNamed[name]; !ok {
				nNames = append(nNames, name)
			}
		}
		sort.Strings(nNames)
		for _, name := range nNames {
			markOnly(d, fmt.Sprintf("%s[%s]", path, name), nil, nNamed[name])
		}
		for i := 0; i < len(oAnon) || i < len(nAnon); i++ {
			child := fmt.Sprintf("%s[%d]", path, i)
			switch {
			case i >= len(nAnon):
				markOnly(d, child, oAnon[i], nil)
			case i >= len(oAnon):
				markOnly(d, child, nil, nAnon[i])
			default:
				diffNode(d, child, oAnon[i], nAnon[i])
			}
		}
	case float64:
		if !timingLeaf(path) {
			return
		}
		nv, ok := n.(float64)
		if !ok {
			markOnly(d, path, o, n)
			return
		}
		row := DiffRow{Path: path, Old: ov, New: nv, Ratio: math.NaN()}
		if ov > 0 && nv > 0 {
			row.Ratio = nv / ov
		}
		d.Rows = append(d.Rows, row)
	}
}

func splitNamed(elems []any) (named map[string]any, anon []any) {
	named = map[string]any{}
	for _, e := range elems {
		if m, ok := e.(map[string]any); ok {
			if name, ok := m["name"].(string); ok && name != "" {
				named[name] = e
				continue
			}
		}
		anon = append(anon, e)
	}
	return named, anon
}

// timingLeaf reports whether a path names a comparable timing: the leaf
// key ends in "_ms".
func timingLeaf(path string) bool {
	leaf := path
	if i := strings.LastIndexAny(path, "]."); i >= 0 && path[i] == '.' {
		leaf = path[i+1:]
	}
	return strings.HasSuffix(leaf, "_ms")
}

func joinPath(path, key string) string {
	if path == "" {
		return key
	}
	return path + "." + key
}

// markOnly records a timing leaf present on only one side.
func markOnly(d *DiffResult, path string, o, n any) {
	var collect func(prefix string, v any, out *[]string)
	collect = func(prefix string, v any, out *[]string) {
		switch vv := v.(type) {
		case map[string]any:
			keys := make([]string, 0, len(vv))
			for k := range vv {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				collect(joinPath(prefix, k), vv[k], out)
			}
		case []any:
			for i, e := range vv {
				collect(fmt.Sprintf("%s[%d]", prefix, i), e, out)
			}
		case float64:
			if timingLeaf(prefix) {
				*out = append(*out, prefix)
			}
		}
	}
	if o != nil {
		collect(path, o, &d.OldOnly)
	}
	if n != nil {
		collect(path, n, &d.NewOnly)
	}
}

// Format renders the per-row table and the geomean line.
func (d *DiffResult) Format(w io.Writer) {
	fmt.Fprintf(w, "bench-diff: %s (%d timing rows)\n", d.Benchmark, len(d.Rows))
	width := 0
	for _, r := range d.Rows {
		if len(r.Path) > width {
			width = len(r.Path)
		}
	}
	for _, r := range d.Rows {
		delta := "n/a"
		if !math.IsNaN(r.Ratio) {
			delta = fmt.Sprintf("%+.1f%%", (r.Ratio-1)*100)
		}
		fmt.Fprintf(w, "  %-*s  %10.3fms -> %10.3fms  %s\n", width, r.Path, r.Old, r.New, delta)
	}
	for _, p := range d.OldOnly {
		fmt.Fprintf(w, "  %s: only in old artifact\n", p)
	}
	for _, p := range d.NewOnly {
		fmt.Fprintf(w, "  %s: only in new artifact\n", p)
	}
	fmt.Fprintf(w, "geomean: %.4fx (%+.1f%%)\n", d.Geomean, (d.Geomean-1)*100)
}

// Regression returns an error when the geomean slowdown exceeds
// thresholdPct percent; a threshold <= 0 disables the gate (report-only
// mode, the right setting when old and new ran on different machines).
func (d *DiffResult) Regression(thresholdPct float64) error {
	if thresholdPct <= 0 {
		return nil
	}
	if d.Geomean > 1+thresholdPct/100 {
		return fmt.Errorf("bench-diff: geomean regression %.1f%% exceeds threshold %.1f%%",
			(d.Geomean-1)*100, thresholdPct)
	}
	return nil
}
