package bench

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"transit/internal/server"
)

func TestTierStats(t *testing.T) {
	lat := []float64{1, 2, 3, 100, 200}
	tiers := []string{"mem", "mem", "mem", "miss", ""}
	got := tierStats(lat, tiers)
	if len(got) != 3 {
		t.Fatalf("tiers: %+v", got)
	}
	if m := got["mem"]; m.Requests != 3 || m.P50MS != 2 || m.MaxMS != 3 {
		t.Errorf("mem: %+v", m)
	}
	if m := got["miss"]; m.Requests != 1 || m.P50MS != 100 {
		t.Errorf("miss: %+v", m)
	}
	if m := got["none"]; m.Requests != 1 || m.MeanMS != 200 {
		t.Errorf("none: %+v", m)
	}
}

// TestServeBenchRecordsTiers runs the client load against an in-process
// job server: the cold pass must report misses, the warm pass mem hits,
// and both surface in the artifact's per-tier latency split and in the
// rendered table.
func TestServeBenchRecordsTiers(t *testing.T) {
	s := server.New(server.Config{})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Drain(5 * time.Second) }()

	res, err := ServeBenchCtx(context.Background(), ts.URL, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cold.Tiers["miss"].Requests != 2 {
		t.Fatalf("cold tiers: %+v", res.Cold.Tiers)
	}
	if res.Warm.Tiers["mem"].Requests != 2 {
		t.Fatalf("warm tiers: %+v", res.Warm.Tiers)
	}
	if p := res.Warm.Tiers["mem"]; p.P95MS < p.P50MS {
		t.Fatalf("warm mem quantiles disordered: %+v", p)
	}
	out := FormatServe(res)
	if !strings.Contains(out, "·miss") || !strings.Contains(out, "·mem") {
		t.Fatalf("per-tier rows missing from table:\n%s", out)
	}
}
