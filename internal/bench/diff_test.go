package bench

import (
	"math"
	"strings"
	"testing"
)

const oldArtifact = `{
  "benchmark": "enum",
  "generated_unix": 1700000000,
  "geomean_speedup": 2.0,
  "rows": [
    {"name": "max2", "found": true,
     "sequential": {"time_ms": 100.0, "enumerated": 500},
     "portfolio":  {"time_ms": 40.0}},
    {"name": "guarded", "found": true,
     "sequential": {"time_ms": 10.0}}
  ]
}`

const newArtifact = `{
  "benchmark": "enum",
  "generated_unix": 1700009999,
  "geomean_speedup": 2.1,
  "rows": [
    {"name": "guarded", "found": true,
     "sequential": {"time_ms": 20.0}},
    {"name": "max2", "found": true,
     "sequential": {"time_ms": 50.0, "enumerated": 480},
     "portfolio":  {"time_ms": 40.0}},
    {"name": "fresh-row",
     "sequential": {"time_ms": 5.0}}
  ]
}`

func TestDiffArtifacts(t *testing.T) {
	d, err := DiffArtifacts([]byte(oldArtifact), []byte(newArtifact))
	if err != nil {
		t.Fatal(err)
	}
	if d.Benchmark != "enum" {
		t.Fatalf("benchmark %q", d.Benchmark)
	}
	// Three comparable timing leaves: rows are matched by name despite
	// reordering, and only *_ms leaves count ("enumerated" and the
	// header's geomean_speedup are ignored).
	ratios := map[string]float64{}
	for _, r := range d.Rows {
		ratios[r.Path] = r.Ratio
	}
	want := map[string]float64{
		"rows[max2].sequential.time_ms":    0.5,
		"rows[max2].portfolio.time_ms":     1.0,
		"rows[guarded].sequential.time_ms": 2.0,
	}
	if len(ratios) != len(want) {
		t.Fatalf("rows: %+v", d.Rows)
	}
	for path, ratio := range want {
		if got := ratios[path]; math.Abs(got-ratio) > 1e-9 {
			t.Fatalf("%s ratio = %v, want %v", path, got, ratio)
		}
	}
	// geomean(0.5, 1.0, 2.0) = 1.0 exactly.
	if math.Abs(d.Geomean-1.0) > 1e-9 {
		t.Fatalf("geomean = %v", d.Geomean)
	}
	// The row present only in the new artifact is reported, not failed on.
	if len(d.OldOnly) != 0 {
		t.Fatalf("old-only: %v", d.OldOnly)
	}
	if len(d.NewOnly) != 1 || d.NewOnly[0] != "rows[fresh-row].sequential.time_ms" {
		t.Fatalf("new-only: %v", d.NewOnly)
	}
}

func TestDiffRejectsDifferentBenchmarks(t *testing.T) {
	_, err := DiffArtifacts([]byte(`{"benchmark":"enum"}`), []byte(`{"benchmark":"mc"}`))
	if err == nil || !strings.Contains(err.Error(), "different benchmarks") {
		t.Fatalf("err = %v", err)
	}
}

func TestDiffRegressionGate(t *testing.T) {
	slow := strings.ReplaceAll(oldArtifact, "100.0", "130.0")
	slow = strings.ReplaceAll(slow, `"sequential": {"time_ms": 10.0}`, `"sequential": {"time_ms": 13.0}`)
	d, err := DiffArtifacts([]byte(oldArtifact), []byte(slow))
	if err != nil {
		t.Fatal(err)
	}
	// Every timing is 30% slower except the untouched portfolio leaf;
	// geomean(1.3, 1.0, 1.3) ≈ 1.19.
	if d.Geomean < 1.15 || d.Geomean > 1.25 {
		t.Fatalf("geomean = %v", d.Geomean)
	}
	if err := d.Regression(10); err == nil {
		t.Fatal("19% regression passed a 10% threshold")
	}
	if err := d.Regression(25); err != nil {
		t.Fatalf("19%% regression failed a 25%% threshold: %v", err)
	}
	// Threshold <= 0 is report-only.
	if err := d.Regression(0); err != nil {
		t.Fatalf("report-only mode failed: %v", err)
	}
}

func TestDiffFormat(t *testing.T) {
	d, err := DiffArtifacts([]byte(oldArtifact), []byte(newArtifact))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	d.Format(&sb)
	out := sb.String()
	for _, want := range []string{
		"bench-diff: enum (3 timing rows)",
		"rows[max2].sequential.time_ms",
		"-50.0%",
		"+100.0%",
		"rows[fresh-row].sequential.time_ms: only in new artifact",
		"geomean: 1.0000x",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted output missing %q:\n%s", want, out)
		}
	}
}
