package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"transit/internal/core"
	"transit/internal/obs"
	"transit/internal/synth"
)

// SMTModeStats is the work one completion mode performed, read from that
// run's own metrics registry (the counters of DESIGN.md §8).
type SMTModeStats struct {
	Time          time.Duration `json:"-"`
	TimeMS        float64       `json:"time_ms"`
	Queries       int64         `json:"queries"`
	Clauses       int64         `json:"clauses_encoded"`
	ClausesReused int64         `json:"clauses_reused"`
	Conflicts     int64         `json:"conflicts"`
	Sessions      int64         `json:"sessions"`
	LearnedKept   int64         `json:"learned_kept"`
}

// SMTRow compares incremental sessions against one-shot solving for one
// protocol. Both modes produce byte-identical EFSMs (canonical models);
// the row quantifies the work the session reuse saves.
type SMTRow struct {
	Protocol    string       `json:"protocol"`
	NumCaches   int          `json:"num_caches"`
	Incremental SMTModeStats `json:"incremental"`
	OneShot     SMTModeStats `json:"one_shot"`
	// ClauseRatio is incremental clauses encoded / one-shot clauses
	// encoded: the fraction of encoding work the session cache could not
	// avoid.
	ClauseRatio float64 `json:"clause_ratio"`
	Speedup     float64 `json:"speedup"`
}

// SMTBench completes VI, MSI, MESI, and Origin twice — with shared
// incremental sessions (the default) and with -no-incremental one-shot
// solving — and reports per-mode query, clause, and conflict work.
func SMTBench(numCaches, workers int) ([]SMTRow, error) {
	return SMTBenchCtx(context.Background(), numCaches, workers)
}

// SMTBenchCtx is SMTBench under a context. As in EngineBenchCtx, each run
// gets a fresh metrics registry so the two modes' counters stay isolated.
func SMTBenchCtx(ctx context.Context, numCaches, workers int) ([]SMTRow, error) {
	if workers < 1 {
		workers = 1
	}
	limits := synth.Limits{MaxSize: 12}
	var rows []SMTRow
	for _, mk := range engineSpecs(numCaches) {
		run := func(noInc bool) (SMTModeStats, string, error) {
			spec := mk()
			reg := obs.NewRegistry()
			rctx := obs.WithMetrics(ctx, reg)
			t0 := time.Now()
			_, err := core.CompleteCtx(rctx, spec.Sys, spec.Vocab, spec.Snippets,
				core.Options{Limits: limits, Workers: workers, NoIncremental: noInc})
			if err != nil {
				return SMTModeStats{}, "", fmt.Errorf("bench: %s (noIncremental=%v): %w", spec.Name, noInc, err)
			}
			d := time.Since(t0)
			return SMTModeStats{
				Time:          d,
				TimeMS:        ms(d),
				Queries:       reg.Get("smt.queries"),
				Clauses:       reg.Get("smt.clauses"),
				ClausesReused: reg.Get("smt.clauses_reused"),
				Conflicts:     reg.Get("sat.conflicts"),
				Sessions:      reg.Get("smt.sessions"),
				LearnedKept:   reg.Get("sat.learned_kept"),
			}, spec.Name, nil
		}
		inc, name, err := run(false)
		if err != nil {
			return nil, err
		}
		one, _, err := run(true)
		if err != nil {
			return nil, err
		}
		row := SMTRow{Protocol: name, NumCaches: numCaches, Incremental: inc, OneShot: one}
		if one.Clauses > 0 {
			row.ClauseRatio = float64(inc.Clauses) / float64(one.Clauses)
		}
		if inc.Time > 0 {
			row.Speedup = float64(one.Time) / float64(inc.Time)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatSMT renders the incremental-vs-one-shot comparison.
func FormatSMT(rows []SMTRow) string {
	var sb strings.Builder
	sb.WriteString("SMT: incremental sessions vs. one-shot solving (identical EFSMs)\n")
	fmt.Fprintf(&sb, "%-9s %6s | %9s %8s %9s %8s %9s | %9s %8s %9s %9s | %7s %8s\n",
		"Protocol", "Caches",
		"IncTime", "Queries", "Clauses", "Reused", "Conflicts",
		"OneTime", "Queries", "Clauses", "Conflicts",
		"ClRatio", "Speedup")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-9s %6d | %9s %8d %9d %8d %9d | %9s %8d %9d %9d | %6.0f%% %7.2fx\n",
			r.Protocol, r.NumCaches,
			r.Incremental.Time.Round(time.Millisecond), r.Incremental.Queries,
			r.Incremental.Clauses, r.Incremental.ClausesReused, r.Incremental.Conflicts,
			r.OneShot.Time.Round(time.Millisecond), r.OneShot.Queries,
			r.OneShot.Clauses, r.OneShot.Conflicts,
			100*r.ClauseRatio, r.Speedup)
	}
	sb.WriteString("(ClRatio is incremental/one-shot clauses encoded — the encoding work the\n shared sessions could not avoid; Reused counts cached-circuit clauses\n served without re-encoding; both modes return identical canonical models,\n so Queries match and the EFSMs are byte-identical)\n")
	return sb.String()
}

// WriteSMTArtifact writes the comparison as a JSON artifact
// (BENCH_smt.json by convention) for machine consumption.
func WriteSMTArtifact(path string, workers int, rows []SMTRow) error {
	return WriteArtifact(path, NewHeader("smt_incremental_vs_one_shot", workers),
		map[string]any{"rows": rows})
}
