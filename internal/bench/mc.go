package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"transit/internal/core"
	"transit/internal/efsm"
	"transit/internal/mc"
	"transit/internal/protocols"
	"transit/internal/synth"
)

// MCModeStats is one checker mode's measurements on one protocol: the
// plain mode explores the full state space, the reduced mode explores one
// canonical representative per PID orbit. A run that exhausts the state
// budget is recorded with Complete=false rather than failing the
// benchmark — at the cache counts this benchmark targets, the unreduced
// space is supposed to be out of reach.
type MCModeStats struct {
	Time            time.Duration `json:"-"`
	TimeMS          float64       `json:"time_ms"`
	States          int           `json:"states"`
	Transitions     int           `json:"transitions"`
	Depth           int           `json:"depth"`
	StatesPerSec    float64       `json:"states_per_sec"`
	ReductionFactor float64       `json:"reduction_factor"`
	Complete        bool          `json:"complete"`
	OK              bool          `json:"ok"`
}

// MCRow compares the plain and symmetry-reduced checker on one protocol.
type MCRow struct {
	Protocol  string      `json:"protocol"`
	NumCaches int         `json:"num_caches"`
	Plain     MCModeStats `json:"plain"`
	Reduced   MCModeStats `json:"reduced"`
	// CoverageRatio is the effective full-space coverage per explored
	// state: (reduced states × mean orbit size) / plain states explored.
	// When the plain run is budget-capped this understates nothing — it
	// says how many budget-equivalents of plain exploration the reduced
	// run bought.
	CoverageRatio float64 `json:"coverage_ratio"`
}

// MCBenchResult is the whole comparison.
type MCBenchResult struct {
	NumCaches int     `json:"num_caches"`
	MaxStates int     `json:"max_states"`
	Rows      []MCRow `json:"rows"`
}

// MCBench runs the model-checker scaling benchmark: each GEMS protocol
// plus Origin at numCaches caches, checked with and without symmetry
// reduction under the same state budget and worker count.
func MCBench(numCaches, workers, maxStates int) (*MCBenchResult, error) {
	return MCBenchCtx(context.Background(), numCaches, workers, maxStates)
}

// MCBenchCtx is MCBench under a context. Each protocol is synthesized
// once from its snippets (same pipeline as Table 4), then the one runtime
// is checked twice. Verdicts must agree whenever both runs complete.
func MCBenchCtx(ctx context.Context, numCaches, workers, maxStates int) (*MCBenchResult, error) {
	if numCaches < 2 {
		numCaches = 6
	}
	if maxStates < 1 {
		maxStates = 1_000_000
	}
	res := &MCBenchResult{NumCaches: numCaches, MaxStates: maxStates}
	specs := []*protocols.Spec{
		protocols.VI(numCaches),
		protocols.MSI(numCaches),
		protocols.MESI(numCaches),
		protocols.Origin(numCaches, true),
	}
	for _, spec := range specs {
		if _, err := core.CompleteCtx(ctx, spec.Sys, spec.Vocab, spec.Snippets,
			core.Options{Limits: synth.Limits{MaxSize: 12}}); err != nil {
			return nil, fmt.Errorf("bench: %s synthesis: %w", spec.Name, err)
		}
		rt, err := efsm.NewRuntime(spec.Sys)
		if err != nil {
			return nil, err
		}
		row := MCRow{Protocol: spec.Name, NumCaches: numCaches}
		mode := func(symmetry bool) (MCModeStats, error) {
			var st MCModeStats
			t0 := time.Now()
			r, err := mc.CheckCtx(ctx, rt, spec.Invariants, mc.Options{
				MaxStates:         maxStates,
				CheckDeadlock:     true,
				Workers:           workers,
				SymmetryReduction: symmetry,
			})
			st.Time = time.Since(t0)
			st.TimeMS = ms(st.Time)
			if err != nil {
				// A budget-capped run is a data point, not a failure; the
				// partial result carries everything the row needs.
				if r == nil || r.States < maxStates {
					return st, fmt.Errorf("bench: %s model check: %w", spec.Name, err)
				}
			}
			if err == nil && !r.OK {
				return st, fmt.Errorf("bench: %s violates invariants:\n%v", spec.Name, r.Violation)
			}
			st.States = r.States
			st.Transitions = r.Transitions
			st.Depth = r.Depth
			st.StatesPerSec = r.StatesPerSec
			st.ReductionFactor = r.ReductionFactor
			st.Complete = r.Complete
			st.OK = err == nil && r.OK
			return st, nil
		}
		if row.Plain, err = mode(false); err != nil {
			return nil, err
		}
		if row.Reduced, err = mode(true); err != nil {
			return nil, err
		}
		if row.Plain.Complete && row.Reduced.Complete && row.Plain.OK != row.Reduced.OK {
			return nil, fmt.Errorf("bench: %s: verdicts disagree: plain ok=%v, reduced ok=%v",
				spec.Name, row.Plain.OK, row.Reduced.OK)
		}
		if row.Plain.States > 0 {
			row.CoverageRatio = float64(row.Reduced.States) * row.Reduced.ReductionFactor /
				float64(row.Plain.States)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// FormatMC renders the scaling comparison.
func FormatMC(res *MCBenchResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Model checking at %d caches, %d-state budget: plain vs. symmetry-reduced frontier\n",
		res.NumCaches, res.MaxStates)
	fmt.Fprintf(&sb, "%-10s | %9s %6s %9s %8s | %9s %6s %9s %8s %7s | %8s\n",
		"Protocol",
		"Plain", "Done", "Time", "St/s",
		"Reduced", "Done", "Time", "St/s", "Orbit",
		"Coverage")
	done := func(c bool) string {
		if c {
			return "full"
		}
		return "cap"
	}
	for _, r := range res.Rows {
		fmt.Fprintf(&sb, "%-10s | %9d %6s %9s %8.0f | %9d %6s %9s %8.0f %6.1fx | %7.1fx\n",
			r.Protocol,
			r.Plain.States, done(r.Plain.Complete), r.Plain.Time.Round(time.Millisecond), r.Plain.StatesPerSec,
			r.Reduced.States, done(r.Reduced.Complete), r.Reduced.Time.Round(time.Millisecond), r.Reduced.StatesPerSec,
			r.Reduced.ReductionFactor,
			r.CoverageRatio)
	}
	sb.WriteString("(Plain/Reduced are states explored; Done says whether the run finished the\n space or hit the budget cap; Orbit is the mean PID-orbit size of reduced\n states — the factor of full states each canonical state stands for;\n Coverage is reduced×orbit/plain — the effective full-space coverage won\n per plain-explored state)\n")
	return sb.String()
}

// WriteMCArtifact writes the comparison as a JSON artifact
// (BENCH_mc.json by convention).
func WriteMCArtifact(path string, workers int, res *MCBenchResult) error {
	return WriteArtifact(path, NewHeader("mc_symmetry_parallel_frontier", workers), res)
}
