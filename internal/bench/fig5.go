package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"transit/internal/expr"
	"transit/internal/synth"
)

// Fig5Point is one data point of Figure 5: the average number of
// expressions explored by SolveConcrete, Pruned and Exhaustive variants,
// for random targets of one size with ten consistent random examples.
type Fig5Point struct {
	Size int
	// PrunedAvg and ExhaustiveAvg are mean candidates enumerated.
	PrunedAvg     float64
	ExhaustiveAvg float64
	// ExhaustiveRan is false where the exhaustive variant is omitted
	// (the paper stops it past size 10 when it exceeds its memory
	// budget; we stop at the same size with an enumeration cap).
	ExhaustiveRan bool
	// ExhaustiveCapped marks sizes where at least one exhaustive trial
	// hit the enumeration cap without finding a consistent expression;
	// ExhaustiveAvg is then a lower bound (the paper's "exceeded the
	// memory limit" case).
	ExhaustiveCapped bool
	// Trials actually measured.
	Trials int
}

// Fig5Options configures the experiment.
type Fig5Options struct {
	// Sizes are the target expression sizes (paper: up to 15).
	Sizes []int
	// Trials per size (averaged).
	Trials int
	// Seed makes runs reproducible.
	Seed int64
	// MaxExhaustiveSize is the largest size the exhaustive variant runs
	// at (paper: 10).
	MaxExhaustiveSize int
	// ExhaustiveCap bounds exhaustive enumeration per trial.
	ExhaustiveCap int64
	// PrunedCap bounds pruned enumeration per trial.
	PrunedCap int64
}

// DefaultFig5Options mirrors the paper's setup at laptop scale.
func DefaultFig5Options() Fig5Options {
	sizes := make([]int, 0, 15)
	for s := 1; s <= 15; s++ {
		sizes = append(sizes, s)
	}
	return Fig5Options{
		Sizes: sizes, Trials: 3, Seed: 1,
		MaxExhaustiveSize: 10,
		ExhaustiveCap:     3_000_000,
		PrunedCap:         50_000_000,
	}
}

// Fig5 runs the Figure 5 experiment: for each size, generate random target
// expressions over the coherence vocabulary, draw ten random consistent
// concrete examples, and run SolveConcrete with and without
// indistinguishability pruning, counting candidates enumerated until a
// consistent expression is found.
func Fig5(opts Fig5Options) ([]Fig5Point, error) {
	return Fig5Ctx(context.Background(), opts)
}

// Fig5Ctx is Fig5 under a context (cancellation plus observability
// threading).
func Fig5Ctx(ctx context.Context, opts Fig5Options) ([]Fig5Point, error) {
	rng := rand.New(rand.NewSource(opts.Seed))
	// Full 8-bit integers: with narrow domains, ten random examples are
	// frequently satisfied by small coincidental expressions, which would
	// mask the pruning gap the figure demonstrates. SolveConcrete never
	// calls the SMT solver, so width is free here.
	u := expr.NewUniverse(3)
	voc := expr.CoherenceVocabulary(u, expr.CoherenceOptions{})
	vars := []*expr.Var{
		expr.V("a", expr.IntType),
		expr.V("b", expr.IntType),
		expr.V("s", expr.SetType),
		expr.V("p", expr.PIDType),
	}
	outTypes := []expr.Type{expr.IntType, expr.BoolType, expr.SetType}

	var points []Fig5Point
	for _, size := range opts.Sizes {
		pt := Fig5Point{Size: size, ExhaustiveRan: size <= opts.MaxExhaustiveSize}
		var prunedSum, exSum float64
		for trial := 0; trial < opts.Trials; trial++ {
			outType := outTypes[rng.Intn(len(outTypes))]
			target, err := expr.RandomExpr(u, rng, voc, vars, outType, size)
			if err != nil {
				return nil, fmt.Errorf("bench: no random target of type %s size %d: %w", outType, size, err)
			}
			// Ten consistent random examples, per the paper.
			exs := make([]synth.ConcreteExample, 10)
			for i := range exs {
				env := expr.RandomEnv(u, rng, vars)
				exs[i] = synth.ConcreteExample{S: env, Out: target.Eval(u, env)}
			}
			prob := synth.Problem{U: u, Vocab: voc, Vars: vars, Output: expr.V("o", outType)}
			_, pstats, err := synth.SolveConcreteCtx(ctx, prob, exs, synth.Limits{
				MaxSize: size + 2, MaxExprs: opts.PrunedCap,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: pruned size %d trial %d: %w", size, trial, err)
			}
			prunedSum += float64(pstats.Enumerated)
			if pt.ExhaustiveRan {
				_, estats, err := synth.SolveConcreteCtx(ctx, prob, exs, synth.Limits{
					MaxSize: size + 2, MaxExprs: opts.ExhaustiveCap, NoPrune: true,
				})
				if err != nil {
					if !errors.Is(err, synth.ErrNoExpression) {
						return nil, fmt.Errorf("bench: exhaustive size %d trial %d: %w", size, trial, err)
					}
					// Cap hit: record the lower bound, like the paper's
					// memory-limit cutoff.
					pt.ExhaustiveCapped = true
				}
				exSum += float64(estats.Enumerated)
			}
			pt.Trials++
		}
		pt.PrunedAvg = prunedSum / float64(pt.Trials)
		if pt.ExhaustiveRan {
			pt.ExhaustiveAvg = exSum / float64(pt.Trials)
		}
		points = append(points, pt)
	}
	return points, nil
}
