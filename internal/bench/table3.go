package bench

import (
	"context"
	"errors"
	"fmt"
	"time"

	"transit/internal/expr"
	"transit/internal/obs"
	"transit/internal/synth"
)

// Table3Benchmark is one expression-inference benchmark: a description, a
// reference expression (the paper's "expected expression" column — any
// semantically consistent expression is accepted), and a constraint
// builder.
type Table3Benchmark struct {
	Name        string
	Description string
	Expected    string
	// ExpectedSize is the reference expression's size.
	ExpectedSize int
	// Long marks benchmarks that need a multi-minute budget (the paper
	// ran with a 30-minute timeout; max-of-three's minimal form has size
	// 16).
	Long  bool
	Build func(u *expr.Universe) (synth.Problem, []synth.ConcolicExample)
}

// Table3Row is one benchmark's measured outcome.
type Table3Row struct {
	Name         string
	Description  string
	Expected     string
	ExpectedSize int
	Found        string
	FoundSize    int
	Constraints  int
	Time         time.Duration
	Iterations   int
	// SMTQueries and Conflicts are read back from the row's own metrics
	// registry (counters "smt.queries" and "sat.conflicts"), the same
	// source -stats-summary reports, rather than re-derived from synth
	// stats — so the table stays consistent with the observability layer.
	SMTQueries int64
	Conflicts  int64
	Enumerated int64
	TimedOut   bool
	Skipped    bool
}

// intProblem builds a Problem over Int variables with the full coherence
// vocabulary.
func intProblem(u *expr.Universe, outType expr.Type, names ...string) (synth.Problem, []*expr.Var) {
	voc := expr.CoherenceVocabulary(u, expr.CoherenceOptions{})
	var vars []*expr.Var
	for _, n := range names {
		t := expr.IntType
		switch n[0] {
		case 's':
			t = expr.SetType
		case 'p':
			t = expr.PIDType
		}
		vars = append(vars, expr.V(n, t))
	}
	return synth.Problem{U: u, Vocab: voc, Vars: vars, Output: expr.V("o", outType)}, vars
}

// Table3Benchmarks is the benchmark suite, reconstructing the paper's
// Table 3: maxima via guarded and functional specs, conditionals over
// enums, and the set-operation rows.
func Table3Benchmarks() []Table3Benchmark {
	return []Table3Benchmark{
		{
			Name:        "max2-guarded",
			Description: "Max of a, b (guarded equalities)",
			Expected:    "ite(gt(a, b), a, b)", ExpectedSize: 6,
			Build: func(u *expr.Universe) (synth.Problem, []synth.ConcolicExample) {
				p, vars := intProblem(u, expr.IntType, "a", "b")
				a, b := vars[0], vars[1]
				o := p.Output
				return p, []synth.ConcolicExample{
					{Pre: expr.Gt(a, b), Post: expr.Eq(o, a)},
					{Pre: expr.Gt(b, a), Post: expr.Eq(o, b)},
				}
			},
		},
		{
			Name:        "max2-functional",
			Description: "Max of a, b (functional spec)",
			Expected:    "ite(gt(a, b), a, b)", ExpectedSize: 6,
			Build: func(u *expr.Universe) (synth.Problem, []synth.ConcolicExample) {
				p, vars := intProblem(u, expr.IntType, "a", "b")
				a, b := vars[0], vars[1]
				o := p.Output
				return p, []synth.ConcolicExample{{
					Pre: expr.True(),
					Post: expr.And(expr.Ge(o, a), expr.Ge(o, b),
						expr.Or(expr.Eq(o, a), expr.Eq(o, b))),
				}}
			},
		},
		{
			Name:        "min2-functional",
			Description: "Min of a, b (functional spec)",
			Expected:    "ite(gt(a, b), b, a)", ExpectedSize: 6,
			Build: func(u *expr.Universe) (synth.Problem, []synth.ConcolicExample) {
				p, vars := intProblem(u, expr.IntType, "a", "b")
				a, b := vars[0], vars[1]
				o := p.Output
				return p, []synth.ConcolicExample{{
					Pre: expr.True(),
					Post: expr.And(expr.Ge(a, o), expr.Ge(b, o),
						expr.Or(expr.Eq(o, a), expr.Eq(o, b))),
				}}
			},
		},
		{
			Name:        "abs-diff",
			Description: "Absolute difference |a - b|",
			Expected:    "ite(gt(a, b), sub(a, b), sub(b, a))", ExpectedSize: 9,
			Build: func(u *expr.Universe) (synth.Problem, []synth.ConcolicExample) {
				p, vars := intProblem(u, expr.IntType, "a", "b")
				a, b := vars[0], vars[1]
				o := p.Output
				return p, []synth.ConcolicExample{
					{Pre: expr.Gt(a, b), Post: expr.Eq(o, expr.Sub(a, b))},
					{Pre: expr.Ge(b, a), Post: expr.Eq(o, expr.Sub(b, a))},
				}
			},
		},
		{
			Name:        "enum-conditional",
			Description: "Conditional on an enum: ite(e = c1, a, b)",
			Expected:    "ite(equals(e, c1), a, b)", ExpectedSize: 6,
			Build: func(u *expr.Universe) (synth.Problem, []synth.ConcolicExample) {
				et := u.MustDeclareEnum("T3E", "c1", "c2", "c3")
				voc := expr.CoherenceVocabulary(u, expr.CoherenceOptions{
					Enums: []*expr.EnumType{et}, WithEnumConstants: true, WithoutEnumIte: true,
				})
				a, b := expr.V("a", expr.IntType), expr.V("b", expr.IntType)
				e := expr.V("e", expr.EnumOf(et))
				o := expr.V("o", expr.IntType)
				p := synth.Problem{U: u, Vocab: voc, Vars: []*expr.Var{a, b, e}, Output: o}
				return p, []synth.ConcolicExample{
					{Pre: expr.Eq(e, expr.EnumC(et, "c1")), Post: expr.Eq(o, a)},
					{Pre: expr.Neq(e, expr.EnumC(et, "c1")), Post: expr.Eq(o, b)},
				}
			},
		},
		{
			Name:        "sym-diff",
			Description: "Symmetric difference of two sets (three invariants)",
			Expected:    "setunion(setminus(s1, s2), setminus(s2, s1))", ExpectedSize: 7,
			Build: func(u *expr.Universe) (synth.Problem, []synth.ConcolicExample) {
				p, vars := intProblem(u, expr.SetType, "s1", "s2")
				s1, s2 := vars[0], vars[1]
				o := p.Output
				un := expr.SetUnion(s1, s2)
				inter := expr.SetInter(s1, s2)
				return p, []synth.ConcolicExample{
					{Pre: expr.True(), Post: expr.SubsetEq(o, un)},
					{Pre: expr.True(), Post: expr.Eq(expr.SetInter(o, inter), expr.NewConst(expr.SetVal(0)))},
					// Together with the disjointness constraint this pins
					// o to exactly (s1 ∪ s2) \ (s1 ∩ s2).
					{Pre: expr.True(), Post: expr.Eq(expr.SetUnion(o, inter), un)},
				}
			},
		},
		{
			Name:        "largest-set-guarded",
			Description: "Largest of 2 sets (guarded)",
			Expected:    "ite(gt(setsize(s1), setsize(s2)), s1, s2)", ExpectedSize: 8,
			Build: func(u *expr.Universe) (synth.Problem, []synth.ConcolicExample) {
				p, vars := intProblem(u, expr.SetType, "s1", "s2")
				s1, s2 := vars[0], vars[1]
				o := p.Output
				return p, []synth.ConcolicExample{
					{Pre: expr.Gt(expr.Card(s1), expr.Card(s2)), Post: expr.Eq(o, s1)},
					{Pre: expr.Ge(expr.Card(s2), expr.Card(s1)), Post: expr.Eq(o, s2)},
				}
			},
		},
		{
			Name:        "largest-set-functional",
			Description: "Largest of 2 sets (functional spec)",
			Expected:    "ite(gt(setsize(s1), setsize(s2)), s1, s2)", ExpectedSize: 8,
			Build: func(u *expr.Universe) (synth.Problem, []synth.ConcolicExample) {
				p, vars := intProblem(u, expr.SetType, "s1", "s2")
				s1, s2 := vars[0], vars[1]
				o := p.Output
				return p, []synth.ConcolicExample{{
					Pre: expr.True(),
					Post: expr.And(
						expr.Ge(expr.Card(o), expr.Card(s1)),
						expr.Ge(expr.Card(o), expr.Card(s2)),
						expr.Or(expr.Eq(o, s1), expr.Eq(o, s2))),
				}}
			},
		},
		{
			Name:        "count-others",
			Description: "Number of sharers other than p",
			Expected:    "setsize(setminus(s1, setof(p1)))", ExpectedSize: 5,
			Build: func(u *expr.Universe) (synth.Problem, []synth.ConcolicExample) {
				p, vars := intProblem(u, expr.IntType, "s1", "p1")
				s1, p1 := vars[0], vars[1]
				o := p.Output
				return p, []synth.ConcolicExample{{
					Pre:  expr.True(),
					Post: expr.Eq(o, expr.Card(expr.SetMinus(s1, expr.Singleton(p1)))),
				}}
			},
		},
		{
			Name:        "max3-functional",
			Description: "Max of a, b, c (functional spec; minimal form has size 16)",
			Expected:    "ite(gt(a, b), ite(gt(a, c), a, c), ite(gt(b, c), b, c))", ExpectedSize: 16,
			Long: true,
			Build: func(u *expr.Universe) (synth.Problem, []synth.ConcolicExample) {
				p, vars := intProblem(u, expr.IntType, "a", "b", "c")
				a, b, c := vars[0], vars[1], vars[2]
				o := p.Output
				return p, []synth.ConcolicExample{{
					Pre: expr.True(),
					Post: expr.And(expr.Ge(o, a), expr.Ge(o, b), expr.Ge(o, c),
						expr.Or(expr.Eq(o, a), expr.Eq(o, b), expr.Eq(o, c))),
				}}
			},
		},
	}
}

// Table3Options bounds the suite run.
type Table3Options struct {
	// IncludeLong runs the multi-minute benchmarks (max-of-three).
	IncludeLong bool
	// Timeout per benchmark; 0 means 30s for short rows and 30min for
	// long ones (the paper's timeout).
	Timeout time.Duration
	// MaxExprs caps enumeration per SolveConcrete call.
	MaxExprs int64
}

// Table3 runs the benchmark suite. Each found expression is verified
// against its constraints by brute force over a reduced universe before
// being reported.
func Table3(opts Table3Options) ([]Table3Row, error) {
	return Table3Ctx(context.Background(), opts)
}

// Table3Ctx is Table3 under a context (cancellation plus observability
// threading).
func Table3Ctx(ctx context.Context, opts Table3Options) ([]Table3Row, error) {
	var rows []Table3Row
	for _, b := range Table3Benchmarks() {
		row := Table3Row{
			Name: b.Name, Description: b.Description,
			Expected: b.Expected, ExpectedSize: b.ExpectedSize,
		}
		if b.Long && !opts.IncludeLong {
			row.Skipped = true
			rows = append(rows, row)
			continue
		}
		timeout := opts.Timeout
		if timeout == 0 {
			timeout = 30 * time.Second
			if b.Long {
				timeout = 30 * time.Minute
			}
		}
		u, err := expr.NewUniverseWidth(3, 4)
		if err != nil {
			return nil, err
		}
		prob, exs := b.Build(u)
		row.Constraints = len(exs)
		limits := synth.Limits{MaxSize: b.ExpectedSize + 2, Timeout: timeout, MaxExprs: opts.MaxExprs}
		// Per-row metrics registry: the SMT/conflict columns read the same
		// counters the observability layer aggregates, isolated per row.
		reg := obs.NewRegistry()
		rctx := obs.WithMetrics(ctx, reg)
		start := time.Now()
		e, stats, err := synth.SolveConcolicCtx(rctx, prob, exs, limits)
		row.Time = time.Since(start)
		row.Iterations = stats.Iterations
		row.SMTQueries = reg.Get("smt.queries")
		row.Conflicts = reg.Get("sat.conflicts")
		row.Enumerated = stats.Concrete.Enumerated
		if err != nil {
			if errors.Is(err, synth.ErrNoExpression) {
				row.TimedOut = true
				rows = append(rows, row)
				continue
			}
			return nil, fmt.Errorf("bench: %s: %w", b.Name, err)
		}
		row.Found = e.String()
		row.FoundSize = e.Size()
		if err := verifyConsistent(prob, e, exs); err != nil {
			return nil, fmt.Errorf("bench: %s: %w", b.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// verifyConsistent brute-force checks a found expression against the
// concolic examples over the full (reduced) domains.
func verifyConsistent(p synth.Problem, e expr.Expr, exs []synth.ConcolicExample) error {
	var rec func(i int, env expr.Env) error
	rec = func(i int, env expr.Env) error {
		if i == len(p.Vars) {
			out := e.Eval(p.U, env)
			env2 := env.Clone()
			env2[p.Output.Name] = out
			for _, c := range exs {
				if c.Pre.Eval(p.U, env).Bool() && !c.Post.Eval(p.U, env2).Bool() {
					return fmt.Errorf("expression %s inconsistent at %v", e, env)
				}
			}
			return nil
		}
		for _, v := range expr.ValuesOf(p.U, p.Vars[i].VT) {
			env[p.Vars[i].Name] = v
			if err := rec(i+1, env); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(0, expr.Env{})
}
