// Package efsm models distributed protocols the way TRANSIT specifies them
// (§3): a protocol skeleton — processes with control states and typed
// process variables, networks with ordering guarantees, message types — and
// behaviour as transitions with guards, parallel-assignment updates, and
// outbound messages. It also defines the concolic snippet structures that
// the synthesis tool in internal/core completes into full transitions, and
// a deterministic execution runtime used by the model checker in
// internal/mc.
package efsm

import (
	"fmt"

	"transit/internal/expr"
)

// SelfVar is the implicit PID-typed variable bound, in every evaluation
// scope of a replicated process instance, to that instance's own identity.
const SelfVar = "Self"

// NetKind is a network's ordering guarantee.
type NetKind int

const (
	// Ordered networks deliver point-to-point in FIFO order.
	Ordered NetKind = iota
	// Unordered networks may deliver pending messages in any order.
	Unordered
)

func (k NetKind) String() string {
	if k == Ordered {
		return "ordered"
	}
	return "unordered"
}

// Field is a typed message field.
type Field struct {
	Name string
	T    expr.Type
}

// MessageType is the struct type of messages carried by one network.
// Networks that carry several logical message kinds discriminate with an
// enum-typed field (conventionally MType).
type MessageType struct {
	Name   string
	Fields []Field
}

// FieldIndex returns the index of a field, or -1.
func (m *MessageType) FieldIndex(name string) int {
	for i, f := range m.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// RouteMode says how a network finds the receiving process instance.
type RouteMode int

const (
	// RouteStatic delivers every message to the unique instance of the
	// receiver definition (e.g. the directory).
	RouteStatic RouteMode = iota
	// RouteByField reads a PID-typed message field and delivers to that
	// instance of the (replicated) receiver definition.
	RouteByField
)

// Network is a typed channel between processes.
type Network struct {
	Name     string
	Kind     NetKind
	Msg      *MessageType
	Receiver *ProcDef
	Route    RouteMode
	// DestField names the PID field used when Route == RouteByField.
	DestField string
}

// Event is a transition trigger: either the receipt of a message on a
// network (bound to a local message variable) or a named external trigger
// (e.g. a core issuing a Load).
type Event struct {
	// Net is non-nil for message events.
	Net *Network
	// MsgVar is the local name binding the received message's fields
	// (fields appear in scope as "MsgVar.Field").
	MsgVar string
	// Trigger is the trigger name for external events (Net == nil).
	Trigger string
}

// IsTrigger reports whether the event is an external trigger.
func (e Event) IsTrigger() bool { return e.Net == nil }

// Key is a stable identity for grouping transitions by event.
func (e Event) Key() string {
	if e.IsTrigger() {
		return "trigger:" + e.Trigger
	}
	return "net:" + e.Net.Name
}

func (e Event) String() string {
	if e.IsTrigger() {
		return e.Trigger
	}
	return fmt.Sprintf("%s %s", e.Net.Name, e.MsgVar)
}

// Update is one parallel assignment to a process variable.
type Update struct {
	Var string
	Rhs expr.Expr
}

// SendField assigns one outbound message field.
type SendField struct {
	Field string
	Rhs   expr.Expr
}

// Send emits one message on a network — or, when TargetSet is non-nil, one
// copy per member of the evaluated PID set (a multicast, e.g. directory
// invalidations to all sharers). Field right-hand sides are evaluated in
// the pre-state scope; for multicasts the network's routing field is set
// per copy and must not be assigned in Fields.
type Send struct {
	Net       *Network
	MsgVar    string
	Fields    []SendField
	TargetSet expr.Expr
}

// Transition is a completed (fully symbolic) EFSM transition: from a
// control state, on an event, guarded by a Boolean expression over the
// scope, move to a control state, apply updates, and send messages.
type Transition struct {
	From  string
	Event Event
	// Guard is a Boolean expression over process variables, Self, and the
	// event's message fields; nil means true.
	Guard expr.Expr
	To    string
	// Defer marks a stall: when the guard holds, the message is left in
	// the network and nothing happens (used by blocking directories).
	Defer   bool
	Updates []Update
	Sends   []Send
}

// GuardString renders the guard for display.
func (t *Transition) GuardString() string {
	if t.Guard == nil {
		return "true"
	}
	return expr.Pretty(t.Guard)
}

// ProcDef is a process definition (an EFSM skeleton plus, once completed,
// its transitions). Replicated definitions (caches) are instantiated once
// per PID; singleton definitions (the directory) once.
type ProcDef struct {
	Name string
	// States is the control-state enumeration.
	States *expr.EnumType
	// Init is the initial control state name.
	Init string
	// Vars are the process variables, initialized to ZeroOf unless
	// InitVals overrides.
	Vars     []*expr.Var
	InitVals expr.Env
	// Replicated marks one-instance-per-PID definitions.
	Replicated bool
	// Asymmetric opts a replicated definition out of PID symmetry: set it
	// when instances are intentionally distinguished by identity (e.g. a
	// designated leader), so the model checker's symmetry reduction
	// disables itself instead of canonicalizing unsoundly. See
	// System.PIDSymmetric.
	Asymmetric bool
	// Triggers lists external trigger names this process reacts to.
	Triggers []string
	// Transitions is the completed behaviour.
	Transitions []*Transition
}

// VarIndex returns the index of a process variable, or -1.
func (d *ProcDef) VarIndex(name string) int {
	for i, v := range d.Vars {
		if v.Name == name {
			return i
		}
	}
	return -1
}

// Var returns the declared variable, or nil.
func (d *ProcDef) Var(name string) *expr.Var {
	if i := d.VarIndex(name); i >= 0 {
		return d.Vars[i]
	}
	return nil
}

// System is a complete protocol instance: a universe, the networks, and the
// process definitions. Exactly one replicated definition is instantiated
// NumCaches times; singleton definitions once each.
type System struct {
	Name     string
	U        *expr.Universe
	Networks []*Network
	Defs     []*ProcDef
}

// Validate checks structural well-formedness: state enums and initial
// states exist, transition endpoints name real states, update targets name
// real variables, send fields exist and type-check, routes are resolvable,
// and guards are Boolean.
func (s *System) Validate() error {
	if s.U == nil {
		return fmt.Errorf("efsm: system %s has no universe", s.Name)
	}
	netByName := map[string]*Network{}
	for _, n := range s.Networks {
		if _, dup := netByName[n.Name]; dup {
			return fmt.Errorf("efsm: duplicate network %s", n.Name)
		}
		netByName[n.Name] = n
		if n.Msg == nil || n.Receiver == nil {
			return fmt.Errorf("efsm: network %s lacks message type or receiver", n.Name)
		}
		if n.Route == RouteByField {
			i := n.Msg.FieldIndex(n.DestField)
			if i < 0 {
				return fmt.Errorf("efsm: network %s routes by missing field %s", n.Name, n.DestField)
			}
			if n.Msg.Fields[i].T != expr.PIDType {
				return fmt.Errorf("efsm: network %s routing field %s is not PID-typed", n.Name, n.DestField)
			}
			if !n.Receiver.Replicated {
				return fmt.Errorf("efsm: network %s routes by field to singleton %s", n.Name, n.Receiver.Name)
			}
		} else if n.Receiver.Replicated {
			return fmt.Errorf("efsm: network %s routes statically to replicated %s", n.Name, n.Receiver.Name)
		}
	}
	for _, d := range s.Defs {
		if d.States == nil {
			return fmt.Errorf("efsm: process %s has no state enum", d.Name)
		}
		if d.States.Ord(d.Init) < 0 {
			return fmt.Errorf("efsm: process %s initial state %s undeclared", d.Name, d.Init)
		}
		for name := range d.InitVals {
			if d.VarIndex(name) < 0 {
				return fmt.Errorf("efsm: process %s initializes unknown variable %s", d.Name, name)
			}
		}
		for _, t := range d.Transitions {
			if err := s.validateTransition(d, t); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *System) validateTransition(d *ProcDef, t *Transition) error {
	ctx := fmt.Sprintf("efsm: %s transition (%s, %s)", d.Name, t.From, t.Event)
	if d.States.Ord(t.From) < 0 {
		return fmt.Errorf("%s: unknown source state", ctx)
	}
	if !t.Defer && d.States.Ord(t.To) < 0 {
		return fmt.Errorf("%s: unknown target state %s", ctx, t.To)
	}
	if t.Guard != nil && t.Guard.Type() != expr.BoolType {
		return fmt.Errorf("%s: guard is not Boolean", ctx)
	}
	scope := s.ScopeOf(d, t.Event)
	check := func(e expr.Expr, what string) error {
		for _, name := range expr.Vars(e) {
			if _, ok := scope[name]; !ok {
				return fmt.Errorf("%s: %s references %s outside scope", ctx, what, name)
			}
		}
		return nil
	}
	if t.Guard != nil {
		if err := check(t.Guard, "guard"); err != nil {
			return err
		}
	}
	for _, u := range t.Updates {
		v := d.Var(u.Var)
		if v == nil {
			return fmt.Errorf("%s: update to unknown variable %s", ctx, u.Var)
		}
		if u.Rhs.Type() != v.VT {
			return fmt.Errorf("%s: update %s has type %s, want %s", ctx, u.Var, u.Rhs.Type(), v.VT)
		}
		if err := check(u.Rhs, "update "+u.Var); err != nil {
			return err
		}
	}
	for _, snd := range t.Sends {
		if snd.TargetSet != nil {
			if snd.TargetSet.Type() != expr.SetType {
				return fmt.Errorf("%s: multicast target on %s is not Set-typed", ctx, snd.Net.Name)
			}
			if snd.Net.Route != RouteByField {
				return fmt.Errorf("%s: multicast on statically routed network %s", ctx, snd.Net.Name)
			}
			if err := check(snd.TargetSet, "multicast target"); err != nil {
				return err
			}
		}
		for _, f := range snd.Fields {
			if snd.TargetSet != nil && f.Field == snd.Net.DestField {
				return fmt.Errorf("%s: multicast on %s assigns routing field %s", ctx, snd.Net.Name, f.Field)
			}
			i := snd.Net.Msg.FieldIndex(f.Field)
			if i < 0 {
				return fmt.Errorf("%s: send on %s sets unknown field %s", ctx, snd.Net.Name, f.Field)
			}
			if f.Rhs.Type() != snd.Net.Msg.Fields[i].T {
				return fmt.Errorf("%s: send field %s has type %s, want %s",
					ctx, f.Field, f.Rhs.Type(), snd.Net.Msg.Fields[i].T)
			}
			if err := check(f.Rhs, "send field "+f.Field); err != nil {
				return err
			}
		}
	}
	return nil
}

// ScopeOf returns the evaluation scope — variable name to declared type —
// for a process handling an event: process variables, Self, and, for
// message events, the dotted message fields.
func (s *System) ScopeOf(d *ProcDef, ev Event) map[string]expr.Type {
	scope := make(map[string]expr.Type, len(d.Vars)+4)
	for _, v := range d.Vars {
		scope[v.Name] = v.VT
	}
	scope[SelfVar] = expr.PIDType
	if !ev.IsTrigger() {
		for _, f := range ev.Net.Msg.Fields {
			scope[ev.MsgVar+"."+f.Name] = f.T
		}
	}
	return scope
}

// ScopeVars is ScopeOf as a deterministic variable list (declaration
// order: process vars, Self, message fields) — the V handed to the
// synthesizer.
func (s *System) ScopeVars(d *ProcDef, ev Event) []*expr.Var {
	out := make([]*expr.Var, 0, len(d.Vars)+4)
	out = append(out, d.Vars...)
	out = append(out, expr.V(SelfVar, expr.PIDType))
	if !ev.IsTrigger() {
		for _, f := range ev.Net.Msg.Fields {
			out = append(out, expr.V(ev.MsgVar+"."+f.Name, f.T))
		}
	}
	return out
}
