package efsm

import (
	"testing"

	"transit/internal/expr"
)

// symSystem builds a PID-symmetric 3-cache token system with real
// transitions: clients request a token from a singleton server that
// records the owner PID and answers on a by-field net. The server's Owner
// variable starts at ZeroOf(PID) = C0, an asymmetric *initial value* —
// deliberately, since symmetry reduction only needs the transition
// relation to be symmetric.
func symSystem(t *testing.T) (*System, *Runtime) {
	t.Helper()
	u := expr.NewUniverse(3)
	mt := u.MustDeclareEnum("SymMT", "Req", "Grant")
	client := &ProcDef{
		Name:       "Client",
		States:     u.MustDeclareEnum("SymClientSt", "I", "W", "H"),
		Init:       "I",
		Replicated: true,
		Triggers:   []string{"Go"},
	}
	server := &ProcDef{
		Name:   "Server",
		States: u.MustDeclareEnum("SymServerSt", "S"),
		Init:   "S",
		Vars: []*expr.Var{
			expr.V("Owner", expr.PIDType),
			expr.V("Seen", expr.SetType),
		},
	}
	up := &Network{
		Name: "Up", Kind: Unordered, Receiver: server, Route: RouteStatic,
		Msg: &MessageType{Name: "UpM", Fields: []Field{
			{Name: "K", T: expr.EnumOf(mt)},
			{Name: "From", T: expr.PIDType},
		}},
	}
	down := &Network{
		Name: "Down", Kind: Ordered, Receiver: client, Route: RouteByField, DestField: "Dest",
		Msg: &MessageType{Name: "DownM", Fields: []Field{
			{Name: "K", T: expr.EnumOf(mt)},
			{Name: "Dest", T: expr.PIDType},
		}},
	}
	client.Transitions = []*Transition{
		{
			From: "I", Event: Event{Trigger: "Go"}, To: "W",
			Sends: []Send{{Net: up, MsgVar: "Out", Fields: []SendField{
				{Field: "K", Rhs: expr.EnumC(mt, "Req")},
				{Field: "From", Rhs: expr.V(SelfVar, expr.PIDType)},
			}}},
		},
		{
			From: "W", Event: Event{Net: down, MsgVar: "In"},
			Guard: expr.Eq(expr.V("In.K", expr.EnumOf(mt)), expr.EnumC(mt, "Grant")),
			To:    "H",
		},
	}
	server.Transitions = []*Transition{{
		From: "S", Event: Event{Net: up, MsgVar: "In"}, To: "S",
		Updates: []Update{
			{Var: "Owner", Rhs: expr.V("In.From", expr.PIDType)},
			{Var: "Seen", Rhs: expr.SetAdd(expr.V("Seen", expr.SetType), expr.V("In.From", expr.PIDType))},
		},
		Sends: []Send{{Net: down, MsgVar: "Out", Fields: []SendField{
			{Field: "K", Rhs: expr.EnumC(mt, "Grant")},
			{Field: "Dest", Rhs: expr.V("In.From", expr.PIDType)},
		}}},
	}}
	sys := &System{Name: "sym", U: u, Networks: []*Network{up, down}, Defs: []*ProcDef{server, client}}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	r, err := NewRuntime(sys)
	if err != nil {
		t.Fatal(err)
	}
	return sys, r
}

// reachable collects up to max states by exhaustive BFS.
func reachable(t *testing.T, r *Runtime, max int) []*State {
	t.Helper()
	seen := map[string]bool{}
	init := r.Initial()
	queue := []*State{init}
	seen[r.Encode(init)] = true
	var out []*State
	for len(queue) > 0 && len(out) < max {
		st := queue[0]
		queue = queue[1:]
		out = append(out, st)
		acts, probs := r.Actions(st)
		if len(probs) > 0 {
			t.Fatalf("semantics problem: %v", probs[0])
		}
		for _, a := range acts {
			next := r.Apply(st, a)
			k := r.Encode(next)
			if !seen[k] {
				seen[k] = true
				queue = append(queue, next)
			}
		}
	}
	return out
}

func allPerms3() []Perm {
	return []Perm{
		{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
	}
}

func TestPermHelpers(t *testing.T) {
	p := Perm{1, 2, 0}
	if p.IsIdentity() {
		t.Error("p is not the identity")
	}
	if !IdentityPerm(3).IsIdentity() || !Perm(nil).IsIdentity() {
		t.Error("identity not recognized")
	}
	inv := p.Inverse()
	if !p.Compose(inv).IsIdentity() || !inv.Compose(p).IsIdentity() {
		t.Errorf("inverse round-trip failed: %v %v", p.Compose(inv), inv.Compose(p))
	}
	q := Perm{2, 1, 0}
	pq := p.Compose(q)
	for x := 0; x < 3; x++ {
		if pq[x] != p[q[x]] {
			t.Errorf("compose order wrong at %d", x)
		}
	}
	if p.Compose(nil)[1] != 2 || Perm(nil).Compose(p)[1] != 2 {
		t.Error("nil operands must act as identity")
	}
}

func TestPermuteValue(t *testing.T) {
	pi := Perm{1, 2, 0}
	if permuteValue(expr.PIDVal(0), pi).PID() != 1 {
		t.Error("PID not mapped")
	}
	if got := permuteValue(expr.SetOf(0, 2), pi).Set(); got != 0b011 {
		t.Errorf("set {C0,C2} should map to {C1,C0}, got %b", got)
	}
	v := expr.BoolVal(true)
	if permuteValue(v, pi) != v {
		t.Error("non-PID values must be fixed")
	}
}

// TestIdentityEncodingMatchesEncode pins the core byte-format contract:
// the canonicalizer's permuted encoding under the identity reproduces
// Runtime.Encode exactly, on every reachable state.
func TestIdentityEncodingMatchesEncode(t *testing.T) {
	_, r := symSystem(t)
	g, err := NewSymGroup(r)
	if err != nil {
		t.Fatal(err)
	}
	enc := g.Encoder()
	id := IdentityPerm(3)
	for _, st := range reachable(t, r, 200) {
		got := string(enc.appendPermEncoding(nil, st, id, id))
		if got != r.Encode(st) {
			t.Fatalf("identity encoding diverges from Encode:\n got %q\nwant %q", got, r.Encode(st))
		}
	}
}

// TestPermEncodingMatchesPermute pins that the in-place permuted encoding
// equals encoding the materialized permuted state, for every permutation.
func TestPermEncodingMatchesPermute(t *testing.T) {
	_, r := symSystem(t)
	g, err := NewSymGroup(r)
	if err != nil {
		t.Fatal(err)
	}
	enc := g.Encoder()
	for _, st := range reachable(t, r, 100) {
		for _, pi := range allPerms3() {
			got := string(enc.appendPermEncoding(nil, st, pi, pi.Inverse()))
			want := r.Encode(r.Permute(st, pi))
			if got != want {
				t.Fatalf("perm %v: encoding diverges:\n got %q\nwant %q", pi, got, want)
			}
		}
	}
}

// TestApplyPermuteCommute is the soundness core: permuting then applying
// the permuted action lands in the same state as applying then permuting.
func TestApplyPermuteCommute(t *testing.T) {
	_, r := symSystem(t)
	for _, st := range reachable(t, r, 100) {
		acts, _ := r.Actions(st)
		for _, a := range acts {
			for _, pi := range allPerms3() {
				left := r.Encode(r.Permute(r.Apply(st, a), pi))
				right := r.Encode(r.Apply(r.Permute(st, pi), r.PermuteAction(a, pi)))
				if left != right {
					t.Fatalf("perm %v action %s: Apply/Permute do not commute", pi, r.FormatAction(a))
				}
			}
		}
	}
}

// TestCanonicalizeOrbitInvariant: every member of a state's orbit
// canonicalizes to the same key, sigma actually witnesses the key, and
// the orbit size matches the count of distinct permuted encodings.
func TestCanonicalizeOrbitInvariant(t *testing.T) {
	_, r := symSystem(t)
	g, err := NewSymGroup(r)
	if err != nil {
		t.Fatal(err)
	}
	enc := g.Encoder()
	for _, st := range reachable(t, r, 100) {
		key, sigma, orbit := enc.Canonicalize(st)
		if got := r.Encode(r.Permute(st, sigma)); got != key {
			t.Fatalf("sigma does not witness the canonical key:\n got %q\nwant %q", got, key)
		}
		distinct := map[string]bool{}
		for _, pi := range allPerms3() {
			distinct[r.Encode(r.Permute(st, pi))] = true
			k2, _, o2 := enc.Canonicalize(r.Permute(st, pi))
			if k2 != key {
				t.Fatalf("orbit member canonicalizes differently: %q vs %q", k2, key)
			}
			if o2 != orbit {
				t.Fatalf("orbit size differs across members: %d vs %d", o2, orbit)
			}
		}
		if len(distinct) != orbit {
			t.Fatalf("orbit size %d, but %d distinct permuted encodings", orbit, len(distinct))
		}
	}
}

func TestInitialOrbitSize(t *testing.T) {
	_, r := symSystem(t)
	g, err := NewSymGroup(r)
	if err != nil {
		t.Fatal(err)
	}
	// The initial state is symmetric except Owner = C0 (ZeroOf), whose
	// stabilizer is the 2! permutations fixing PID 0, so the orbit is 3.
	_, _, orbit := g.Encoder().Canonicalize(r.Initial())
	if orbit != 3 {
		t.Errorf("initial orbit size = %d, want 3", orbit)
	}
}

func TestPIDSymmetricAccepts(t *testing.T) {
	sys, _ := symSystem(t)
	if err := sys.PIDSymmetric(); err != nil {
		t.Errorf("symmetric system rejected: %v", err)
	}
}

func TestPIDSymmetricRejections(t *testing.T) {
	u3 := expr.NewUniverse(3)
	cases := []struct {
		name   string
		mutate func(sys *System, client *ProcDef)
	}{
		{"pid const guard", func(sys *System, client *ProcDef) {
			client.Transitions[0].Guard = expr.Eq(
				expr.V(SelfVar, expr.PIDType), expr.NewConst(expr.PIDVal(1)))
		}},
		{"pid literal func guard", func(sys *System, client *ProcDef) {
			client.Transitions[0].Guard = expr.Eq(
				expr.V(SelfVar, expr.PIDType), expr.NewApply(expr.PIDLitFn(2)))
		}},
		{"partial set const update", func(sys *System, client *ProcDef) {
			srv := sys.Defs[0]
			srv.Transitions[0].Updates[1].Rhs = expr.NewConst(expr.SetOf(0, 1))
		}},
		{"pid const send field", func(sys *System, client *ProcDef) {
			srv := sys.Defs[0]
			srv.Transitions[0].Sends[0].Fields[1].Rhs = expr.NewConst(expr.PIDVal(0))
		}},
		{"asymmetric opt-out", func(sys *System, client *ProcDef) {
			client.Asymmetric = true
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys, _ := symSystem(t)
			tc.mutate(sys, sys.Defs[1])
			if err := sys.PIDSymmetric(); err == nil {
				t.Error("expected symmetry rejection")
			}
		})
	}
	t.Run("full and empty set literals pass", func(t *testing.T) {
		sys, _ := symSystem(t)
		srv := sys.Defs[0]
		srv.Transitions[0].Updates[1].Rhs = expr.NewConst(expr.SetVal(u3.SetMask()))
		if err := sys.PIDSymmetric(); err != nil {
			t.Errorf("full-set literal must pass: %v", err)
		}
		srv.Transitions[0].Updates[1].Rhs = expr.NewConst(expr.SetVal(0))
		if err := sys.PIDSymmetric(); err != nil {
			t.Errorf("empty-set literal must pass: %v", err)
		}
	})
	t.Run("single cache", func(t *testing.T) {
		u := expr.NewUniverse(1)
		sys := &System{Name: "one", U: u, Defs: []*ProcDef{{
			Name: "P", States: u.MustDeclareEnum("OneSt", "A"), Init: "A", Replicated: true,
		}}}
		if err := sys.PIDSymmetric(); err == nil {
			t.Error("1-cache system cannot be usefully symmetric")
		}
	})
	t.Run("no replicated defs", func(t *testing.T) {
		u := expr.NewUniverse(3)
		sys := &System{Name: "solo", U: u, Defs: []*ProcDef{{
			Name: "P", States: u.MustDeclareEnum("SoloSt", "A"), Init: "A",
		}}}
		if err := sys.PIDSymmetric(); err == nil {
			t.Error("system without replicated processes has nothing to reduce")
		}
	})
}

func TestNewSymGroupCap(t *testing.T) {
	u := expr.NewUniverse(MaxSymmetryPIDs + 1)
	cl := &ProcDef{
		Name: "C", States: u.MustDeclareEnum("CapSt", "A"), Init: "A", Replicated: true,
	}
	sys := &System{Name: "cap", U: u, Defs: []*ProcDef{cl}}
	r, err := NewRuntime(sys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSymGroup(r); err == nil {
		t.Errorf("group over %d PIDs must be rejected", MaxSymmetryPIDs+1)
	}
}

func TestSymGroupOrder(t *testing.T) {
	_, r := symSystem(t)
	g, err := NewSymGroup(r)
	if err != nil {
		t.Fatal(err)
	}
	if g.Size() != 6 || g.Degree() != 3 {
		t.Fatalf("size=%d degree=%d, want 6/3", g.Size(), g.Degree())
	}
	if !g.perms[0].IsIdentity() {
		t.Error("perms[0] must be the identity")
	}
}
