package efsm

import (
	"strings"
	"testing"

	"transit/internal/expr"
)

// miniSystem builds a 3-cache system with a directory, one ordered
// request net and one by-field reply net, for unit-testing the runtime
// machinery directly.
func miniSystem(t *testing.T) (*System, *ProcDef, *ProcDef, *Network, *Network) {
	t.Helper()
	u := expr.NewUniverse(3)
	mt := u.MustDeclareEnum("MiniMT", "A", "B")
	cache := &ProcDef{
		Name:       "Cache",
		States:     u.MustDeclareEnum("MiniCacheSt", "X", "Y"),
		Init:       "X",
		Replicated: true,
	}
	dir := &ProcDef{
		Name:   "Dir",
		States: u.MustDeclareEnum("MiniDirSt", "D"),
		Init:   "D",
		Vars:   []*expr.Var{expr.V("Sharers", expr.SetType)},
		InitVals: expr.Env{
			"Sharers": expr.SetOf(0, 2),
		},
	}
	up := &Network{
		Name: "Up", Kind: Ordered, Receiver: dir, Route: RouteStatic,
		Msg: &MessageType{Name: "UpM", Fields: []Field{
			{Name: "K", T: expr.EnumOf(mt)},
			{Name: "From", T: expr.PIDType},
		}},
	}
	down := &Network{
		Name: "Down", Kind: Unordered, Receiver: cache, Route: RouteByField, DestField: "Dest",
		Msg: &MessageType{Name: "DownM", Fields: []Field{
			{Name: "K", T: expr.EnumOf(mt)},
			{Name: "Dest", T: expr.PIDType},
		}},
	}
	sys := &System{Name: "mini", U: u, Networks: []*Network{up, down}, Defs: []*ProcDef{dir, cache}}
	return sys, dir, cache, up, down
}

func TestInitValsApplied(t *testing.T) {
	sys, dir, _, _, _ := miniSystem(t)
	dir.Transitions = nil
	r, err := NewRuntime(sys)
	if err != nil {
		t.Fatal(err)
	}
	st := r.Initial()
	if r.VarOf(st, 0, "Sharers").Set() != 0b101 {
		t.Errorf("InitVals not applied: %v", r.VarOf(st, 0, "Sharers"))
	}
}

func TestMulticastApply(t *testing.T) {
	sys, dir, _, up, down := miniSystem(t)
	u := sys.U
	mt, _ := u.Enum("MiniMT")
	sharers := expr.V("Sharers", expr.SetType)
	from := expr.V("In.From", expr.PIDType)
	dir.Transitions = []*Transition{{
		From: "D", Event: Event{Net: up, MsgVar: "In"}, To: "D",
		Sends: []Send{{
			Net: down, MsgVar: "Out",
			TargetSet: expr.SetMinus(sharers, expr.Singleton(from)),
			Fields:    []SendField{{Field: "K", Rhs: expr.EnumC(mt, "B")}},
		}},
	}}
	r, err := NewRuntime(sys)
	if err != nil {
		t.Fatal(err)
	}
	st := r.Initial()
	// Inject a request from C0; Sharers = {C0, C2}, so the multicast goes
	// to C2 only.
	st.Nets[0][0] = []Msg{{expr.EnumValOf(mt, "A"), expr.PIDVal(0)}}
	acts, probs := r.Actions(st)
	if len(probs) != 0 || len(acts) != 1 {
		t.Fatalf("acts=%d probs=%v", len(acts), probs)
	}
	next := r.Apply(st, acts[0])
	if len(next.Nets[1][0]) != 0 || len(next.Nets[1][1]) != 0 {
		t.Error("multicast must exclude the sender and non-members")
	}
	if len(next.Nets[1][2]) != 1 {
		t.Fatalf("C2 should receive exactly one copy, got %d", len(next.Nets[1][2]))
	}
	msg := next.Nets[1][2][0]
	if msg[1].PID() != 2 {
		t.Errorf("Dest field should be the member PID, got %v", msg[1])
	}
	if msg[0].EnumOrd() != mt.Ord("B") {
		t.Errorf("payload field wrong: %v", msg[0])
	}
}

func TestMulticastValidation(t *testing.T) {
	sys, dir, _, up, down := miniSystem(t)
	sharers := expr.V("Sharers", expr.SetType)
	// Multicast on a statically routed network is rejected.
	dir.Transitions = []*Transition{{
		From: "D", Event: Event{Net: up, MsgVar: "In"}, To: "D",
		Sends: []Send{{Net: up, MsgVar: "Out", TargetSet: sharers}},
	}}
	if err := sys.Validate(); err == nil {
		t.Error("multicast on static route should fail validation")
	}
	// Assigning the routing field of a multicast is rejected.
	dir.Transitions = []*Transition{{
		From: "D", Event: Event{Net: up, MsgVar: "In"}, To: "D",
		Sends: []Send{{
			Net: down, MsgVar: "Out", TargetSet: sharers,
			Fields: []SendField{{Field: "Dest", Rhs: expr.V("In.From", expr.PIDType)}},
		}},
	}}
	if err := sys.Validate(); err == nil {
		t.Error("assigning the multicast routing field should fail validation")
	}
}

func TestEncodeDistinguishesOrderedQueues(t *testing.T) {
	sys, dir, _, _, _ := miniSystem(t)
	dir.Transitions = nil
	u := sys.U
	mt, _ := u.Enum("MiniMT")
	r, err := NewRuntime(sys)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(k string, pid int) Msg { return Msg{expr.EnumValOf(mt, k), expr.PIDVal(pid)} }
	a := r.Initial()
	a.Nets[0][0] = []Msg{mk("A", 0), mk("B", 1)}
	b := r.Initial()
	b.Nets[0][0] = []Msg{mk("B", 1), mk("A", 0)}
	if r.Encode(a) == r.Encode(b) {
		t.Error("ordered queues with different orders must encode differently")
	}
}

func TestPrimeHelpers(t *testing.T) {
	if Prime("X") != "X'" {
		t.Error("Prime")
	}
	base, primed := IsPrimed("Msg.F'")
	if !primed || base != "Msg.F" {
		t.Errorf("IsPrimed: %s %v", base, primed)
	}
	if _, primed := IsPrimed("X"); primed {
		t.Error("unprimed misdetected")
	}
}

func TestBlockAndGroupKeys(t *testing.T) {
	sys, _, _, up, down := miniSystem(t)
	_ = sys
	ev := Event{Net: up, MsgVar: "Msg"}
	a := &Snippet{From: "D", Event: ev, To: "D",
		Sends: []SendSpec{{Net: down, MsgVar: "R"}}}
	b := &Snippet{From: "D", Event: ev, To: "D",
		Sends: []SendSpec{{Net: down, MsgVar: "R"}}}
	c := &Snippet{From: "D", Event: ev, To: "D",
		Sends: []SendSpec{{Net: down, MsgVar: "P"}}}
	d := &Snippet{From: "D", Event: ev, To: "D"}
	if a.BlockKey() != b.BlockKey() {
		t.Error("identical headers must share a block")
	}
	if a.BlockKey() == c.BlockKey() {
		t.Error("different output-event names are different blocks")
	}
	if a.BlockKey() == d.BlockKey() {
		t.Error("different send sets are different blocks")
	}
	if a.GroupKey() != c.GroupKey() || a.GroupKey() != d.GroupKey() {
		t.Error("same (state, event) must share a group")
	}
}

func TestSnippetValidation(t *testing.T) {
	sys, dir, _, up, down := miniSystem(t)
	u := sys.U
	mt, _ := u.Enum("MiniMT")
	ev := Event{Net: up, MsgVar: "Msg"}
	sharersP := expr.V(Prime("Sharers"), expr.SetType)
	cases := []struct {
		name string
		sn   *Snippet
	}{
		{"unknown from", &Snippet{From: "Z", Event: ev, To: "D"}},
		{"unknown to", &Snippet{From: "D", Event: ev, To: "Z"}},
		{"defer with cases", &Snippet{From: "D", Event: ev, Defer: true,
			Cases: []SnippetCase{{}}}},
		{"primed in guard", &Snippet{From: "D", Event: ev, To: "D",
			Guard: expr.Eq(sharersP, sharersP)}},
		{"unknown post target", &Snippet{From: "D", Event: ev, To: "D",
			Cases: []SnippetCase{{Posts: []Post{
				{Target: "Nope", Constraint: expr.True()}}}}}},
		{"foreign primed var", &Snippet{From: "D", Event: ev, To: "D",
			Sends: []SendSpec{{Net: down, MsgVar: "R"}},
			Cases: []SnippetCase{{Posts: []Post{
				{Target: "R.K", Constraint: expr.Eq(sharersP, sharersP)}}}}}},
		{"out of scope pre", &Snippet{From: "D", Event: ev, To: "D",
			Cases: []SnippetCase{{Pre: expr.Eq(expr.V("Ghost", expr.IntType), expr.IntC(u, 0))}}}},
		{"non-bool post", &Snippet{From: "D", Event: ev, To: "D",
			Cases: []SnippetCase{{Posts: []Post{
				{Target: "Sharers", Constraint: expr.Card(sharersP)}}}}}},
	}
	for _, c := range cases {
		c.sn.Process = "Dir"
		if err := c.sn.Validate(sys, dir); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
	// A valid snippet passes.
	ok := &Snippet{Process: "Dir", From: "D", Event: ev, To: "D",
		Sends: []SendSpec{{Net: down, MsgVar: "R"}},
		Cases: []SnippetCase{{
			Pre: expr.Eq(expr.V("Msg.K", expr.EnumOf(mt)), expr.EnumC(mt, "A")),
			Posts: []Post{
				EqPost("Sharers", expr.SetAdd(expr.V("Sharers", expr.SetType), expr.V("Msg.From", expr.PIDType))),
				EqPost("R.K", expr.EnumC(mt, "B")),
				EqPost("R.Dest", expr.V("Msg.From", expr.PIDType)),
			},
		}},
	}
	if err := ok.Validate(sys, dir); err != nil {
		t.Errorf("valid snippet rejected: %v", err)
	}
}

func TestScopeVarsOrder(t *testing.T) {
	sys, dir, _, up, _ := miniSystem(t)
	vars := sys.ScopeVars(dir, Event{Net: up, MsgVar: "In"})
	var names []string
	for _, v := range vars {
		names = append(names, v.Name)
	}
	want := []string{"Sharers", SelfVar, "In.K", "In.From"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("scope order = %v, want %v", names, want)
	}
}

func TestInstanceNaming(t *testing.T) {
	sys, _, _, _, _ := miniSystem(t)
	r, err := NewRuntime(sys)
	if err != nil {
		t.Fatal(err)
	}
	if r.Insts[0].Name() != "Dir" {
		t.Errorf("singleton name %s", r.Insts[0].Name())
	}
	if r.Insts[1].Name() != "Cache0" || r.Insts[3].Name() != "Cache2" {
		t.Errorf("replicated names %s %s", r.Insts[1].Name(), r.Insts[3].Name())
	}
}

func TestEventStringsAndKinds(t *testing.T) {
	_, _, _, up, _ := miniSystem(t)
	msgEv := Event{Net: up, MsgVar: "M"}
	trigEv := Event{Trigger: "Go"}
	if msgEv.IsTrigger() || !trigEv.IsTrigger() {
		t.Error("IsTrigger")
	}
	if msgEv.String() != "Up M" || trigEv.String() != "Go" {
		t.Errorf("event strings: %q %q", msgEv.String(), trigEv.String())
	}
	if msgEv.Key() == trigEv.Key() {
		t.Error("keys must differ")
	}
	if Ordered.String() != "ordered" || Unordered.String() != "unordered" {
		t.Error("NetKind strings")
	}
}

func TestFormatHelpers(t *testing.T) {
	sys, dir, _, up, _ := miniSystem(t)
	u := sys.U
	mt, _ := u.Enum("MiniMT")
	dir.Transitions = []*Transition{{
		From: "D", Event: Event{Net: up, MsgVar: "In"}, To: "D",
	}}
	r, err := NewRuntime(sys)
	if err != nil {
		t.Fatal(err)
	}
	st := r.Initial()
	msg := Msg{expr.EnumValOf(mt, "A"), expr.PIDVal(1)}
	if got := r.FormatMsg(up, msg); got != "{K:A, From:C1}" {
		t.Errorf("FormatMsg = %q", got)
	}
	stStr := r.FormatState(st)
	for _, want := range []string{"Dir{D", "Sharers={C0, C2}", "Cache0{X}"} {
		if !strings.Contains(stStr, want) {
			t.Errorf("FormatState missing %q: %s", want, stStr)
		}
	}
	st.Nets[0][0] = []Msg{msg}
	acts, _ := r.Actions(st)
	if len(acts) != 1 {
		t.Fatalf("acts = %d", len(acts))
	}
	actStr := r.FormatAction(acts[0])
	if !strings.Contains(actStr, "Dir") || !strings.Contains(actStr, "recv Up") {
		t.Errorf("FormatAction = %q", actStr)
	}
}
