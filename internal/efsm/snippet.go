package efsm

import (
	"fmt"
	"strings"

	"transit/internal/expr"
)

// Prime decorates a variable or field name as its primed (post-state)
// version, per the snippet notation of §3.2.
func Prime(name string) string { return name + "'" }

// IsPrimed reports whether a name is primed, and strips the prime.
func IsPrimed(name string) (string, bool) {
	if strings.HasSuffix(name, "'") {
		return strings.TrimSuffix(name, "'"), true
	}
	return name, false
}

// Post is one post-condition of a snippet case: a Boolean constraint that
// mentions exactly one primed variable — the Target — in terms of the
// unprimed scope. A fully symbolic action is the special case
// equals(Target', rhs).
type Post struct {
	// Target is the unprimed name of the constrained variable: a process
	// variable ("Sharers") or an outbound message field ("RMsg.MType").
	Target string
	// Constraint is Boolean over scope ∪ {Prime(Target)}.
	Constraint expr.Expr
}

// EqPost is the symbolic-action helper: Target' = rhs.
func EqPost(target string, rhs expr.Expr) Post {
	return Post{
		Target:     target,
		Constraint: expr.Eq(expr.V(Prime(target), rhs.Type()), rhs),
	}
}

// SnippetCase is one guarded constraint group of a snippet (Figure 4): if
// Pre holds in the pre-state, every Post must hold of the post-state.
// A concrete snippet is a SnippetCase whose Pre pins variables to concrete
// values and whose Posts pin concrete outputs.
type SnippetCase struct {
	// Pre is Boolean over the unprimed scope; nil means true.
	Pre   expr.Expr
	Posts []Post
}

// SendSpec declares an outbound message of a snippet: which network and
// the local variable name whose dotted fields the posts may constrain.
// A non-nil TargetSet makes the send a multicast (one copy per member of
// the evaluated PID set); the routing field is then filled per copy and
// must not be constrained by posts.
type SendSpec struct {
	Net       *Network
	MsgVar    string
	TargetSet expr.Expr
}

// Snippet is the unit of specification in TRANSIT (Figure 4): a transition
// fragment from a control state on an input event to a next control state,
// with declared outbound messages, an optional symbolic guard, and a set of
// conditional constraint cases. Snippets with an empty Guard ask the tool
// to infer one; constraints that are not equalities ask the tool to infer
// update expressions.
type Snippet struct {
	Process string
	From    string
	Event   Event
	// Guard, when non-nil, is symbolic: it is used as-is and exempted
	// from guard inference (§3.2: "a non-empty guard is assumed to be
	// symbolic").
	Guard expr.Expr
	To    string
	Sends []SendSpec
	Cases []SnippetCase
	// Defer marks an explicit stall rule (blocking directories): when the
	// guard holds, leave the message in the network. Defer snippets have
	// no cases or sends and must carry a symbolic guard (or none,
	// meaning stall unconditionally).
	Defer bool
	// Label is an optional human-readable tag used in diagnostics and
	// case-study metrics.
	Label string
}

// BlockKey identifies the guard-action block a snippet belongs to (§5.2):
// snippets with the same starting state, input event, and guard-action
// header — next state plus declared output events, per Figure 4's
// "(NextState, Net1 Msg1, Net2 Msg2)" — merge into one block.
func (sn *Snippet) BlockKey() string {
	key := sn.From + "|" + sn.Event.Key() + "|" + sn.To + "|" + fmt.Sprint(sn.Defer)
	for _, snd := range sn.Sends {
		key += "|" + snd.Net.Name + " " + snd.MsgVar
		if snd.TargetSet != nil {
			key += " mcast:" + snd.TargetSet.String()
		}
	}
	return key
}

// GroupKey identifies the (state, event) group whose guards must be
// mutually exclusive.
func (sn *Snippet) GroupKey() string {
	return sn.From + "|" + sn.Event.Key()
}

// Validate checks a snippet against its process definition and system.
func (sn *Snippet) Validate(s *System, d *ProcDef) error {
	ctx := fmt.Sprintf("efsm: snippet %q (%s, %s, %s)", sn.Label, d.Name, sn.From, sn.Event)
	if d.States.Ord(sn.From) < 0 {
		return fmt.Errorf("%s: unknown source state", ctx)
	}
	if sn.Defer {
		if len(sn.Cases) > 0 || len(sn.Sends) > 0 {
			return fmt.Errorf("%s: defer snippets take no cases or sends", ctx)
		}
		return nil
	}
	if d.States.Ord(sn.To) < 0 {
		return fmt.Errorf("%s: unknown target state %s", ctx, sn.To)
	}
	scope := s.ScopeOf(d, sn.Event)
	outScope := make(map[string]expr.Type, len(sn.Sends)*4)
	for _, snd := range sn.Sends {
		if snd.TargetSet != nil {
			if snd.TargetSet.Type() != expr.SetType {
				return fmt.Errorf("%s: multicast target on %s is not Set-typed", ctx, snd.Net.Name)
			}
			if snd.Net.Route != RouteByField {
				return fmt.Errorf("%s: multicast on statically routed network %s", ctx, snd.Net.Name)
			}
		}
		for _, f := range snd.Net.Msg.Fields {
			if snd.TargetSet != nil && f.Name == snd.Net.DestField {
				continue // routing field is per-copy; not constrainable
			}
			outScope[snd.MsgVar+"."+f.Name] = f.T
		}
	}
	checkUnprimed := func(e expr.Expr, what string) error {
		for _, name := range expr.Vars(e) {
			if _, primed := IsPrimed(name); primed {
				return fmt.Errorf("%s: %s mentions primed variable %s", ctx, what, name)
			}
			if _, ok := scope[name]; !ok {
				return fmt.Errorf("%s: %s references %s outside scope", ctx, what, name)
			}
		}
		return nil
	}
	if sn.Guard != nil {
		if sn.Guard.Type() != expr.BoolType {
			return fmt.Errorf("%s: guard is not Boolean", ctx)
		}
		if err := checkUnprimed(sn.Guard, "guard"); err != nil {
			return err
		}
	}
	for ci, c := range sn.Cases {
		if c.Pre != nil {
			if c.Pre.Type() != expr.BoolType {
				return fmt.Errorf("%s: case %d pre is not Boolean", ctx, ci)
			}
			if err := checkUnprimed(c.Pre, "pre"); err != nil {
				return err
			}
		}
		for _, p := range c.Posts {
			targetType, ok := scope[p.Target]
			if !ok {
				targetType, ok = outScope[p.Target]
			}
			if !ok {
				return fmt.Errorf("%s: post targets unknown variable %s", ctx, p.Target)
			}
			if p.Constraint.Type() != expr.BoolType {
				return fmt.Errorf("%s: post on %s is not Boolean", ctx, p.Target)
			}
			primedSeen := false
			for _, name := range expr.Vars(p.Constraint) {
				base, primed := IsPrimed(name)
				if primed {
					if base != p.Target {
						return fmt.Errorf("%s: post on %s mentions foreign primed variable %s",
							ctx, p.Target, name)
					}
					primedSeen = true
					continue
				}
				if _, okS := scope[name]; !okS {
					return fmt.Errorf("%s: post on %s references %s outside scope", ctx, p.Target, name)
				}
			}
			_ = primedSeen // a post may hold vacuously without the primed var
			_ = targetType
		}
	}
	return nil
}
