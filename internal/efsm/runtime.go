package efsm

import (
	"fmt"
	"sort"
	"strings"

	"transit/internal/expr"
)

// Instance is one running process: a definition plus, for replicated
// definitions, its PID.
type Instance struct {
	Def *ProcDef
	// Idx is the instance's global index in the runtime.
	Idx int
	// PID is the cache identity for replicated instances, 0 for
	// singletons (whose Self variable is never meaningful).
	PID int
}

// Name renders "Dir" or "Cache1".
func (in *Instance) Name() string {
	if in.Def.Replicated {
		return fmt.Sprintf("%s%d", in.Def.Name, in.PID)
	}
	return in.Def.Name
}

// Msg is a message value: field values in MessageType order.
type Msg []expr.Value

// ProcState is one instance's local state.
type ProcState struct {
	Ctl  int // ordinal in Def.States
	Vars []expr.Value
}

// State is a global protocol state: per-instance local states and
// per-network, per-receiver-slot pending messages.
type State struct {
	Procs []ProcState
	// Nets is indexed [network][receiver slot][message]. Static routes
	// have one slot; by-field routes have one slot per PID.
	Nets [][][]Msg
}

// Runtime instantiates a System and implements its execution semantics.
type Runtime struct {
	Sys    *System
	Insts  []*Instance
	byDef  map[*ProcDef][]int
	netIdx map[*Network]int
	// transIdx groups each definition's transitions by (state ordinal,
	// event key).
	transIdx map[*ProcDef]map[string][]*Transition
}

// NewRuntime validates the system and builds its instances: one per PID
// for each replicated definition, one for each singleton.
func NewRuntime(sys *System) (*Runtime, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	r := &Runtime{
		Sys:      sys,
		byDef:    make(map[*ProcDef][]int),
		netIdx:   make(map[*Network]int),
		transIdx: make(map[*ProcDef]map[string][]*Transition),
	}
	for _, d := range sys.Defs {
		n := 1
		if d.Replicated {
			n = sys.U.NumCaches()
		}
		for pid := 0; pid < n; pid++ {
			inst := &Instance{Def: d, Idx: len(r.Insts), PID: pid}
			r.Insts = append(r.Insts, inst)
			r.byDef[d] = append(r.byDef[d], inst.Idx)
		}
		idx := make(map[string][]*Transition)
		for _, t := range d.Transitions {
			key := transKey(d.States.Ord(t.From), t.Event)
			idx[key] = append(idx[key], t)
		}
		r.transIdx[d] = idx
	}
	for i, n := range sys.Networks {
		r.netIdx[n] = i
		if len(r.byDef[n.Receiver]) == 0 {
			return nil, fmt.Errorf("efsm: network %s receiver %s has no instances", n.Name, n.Receiver.Name)
		}
	}
	return r, nil
}

func transKey(stateOrd int, ev Event) string {
	return fmt.Sprintf("%d|%s", stateOrd, ev.Key())
}

// Initial builds the initial global state.
func (r *Runtime) Initial() *State {
	st := &State{
		Procs: make([]ProcState, len(r.Insts)),
		Nets:  make([][][]Msg, len(r.Sys.Networks)),
	}
	for i, inst := range r.Insts {
		d := inst.Def
		vars := make([]expr.Value, len(d.Vars))
		for j, v := range d.Vars {
			if init, ok := d.InitVals[v.Name]; ok {
				vars[j] = init
			} else {
				vars[j] = expr.ZeroOf(v.VT)
			}
		}
		st.Procs[i] = ProcState{Ctl: d.States.Ord(d.Init), Vars: vars}
	}
	for n, net := range r.Sys.Networks {
		slots := 1
		if net.Route == RouteByField {
			slots = r.Sys.U.NumCaches()
		}
		st.Nets[n] = make([][]Msg, slots)
	}
	return st
}

// Clone deep-copies a state.
func (st *State) Clone() *State {
	out := &State{
		Procs: make([]ProcState, len(st.Procs)),
		Nets:  make([][][]Msg, len(st.Nets)),
	}
	for i, p := range st.Procs {
		out.Procs[i] = ProcState{Ctl: p.Ctl, Vars: append([]expr.Value(nil), p.Vars...)}
	}
	for n, slots := range st.Nets {
		out.Nets[n] = make([][]Msg, len(slots))
		for s, msgs := range slots {
			out.Nets[n][s] = make([]Msg, len(msgs))
			for m, msg := range msgs {
				out.Nets[n][s][m] = append(Msg(nil), msg...)
			}
		}
	}
	return out
}

// Action is one enabled step: an instance handling a trigger or consuming
// a specific pending message via a specific transition.
type Action struct {
	Inst  int
	Trans *Transition
	// Net/Slot/Pos locate the consumed message; Net < 0 for triggers.
	Net, Slot, Pos int
	Msg            Msg
}

// ProblemKind classifies execution-semantics violations detected while
// enumerating actions.
type ProblemKind int

const (
	// UnexpectedMessage: a deliverable message has no matching transition
	// (and no stall rule) in the receiver's current state — the error the
	// paper's case studies repeatedly hit for underspecified protocols.
	UnexpectedMessage ProblemKind = iota
	// NonDeterministic: more than one guard of a (state, event) group is
	// simultaneously true, violating the §5.2 determinism requirement.
	NonDeterministic
)

func (k ProblemKind) String() string {
	if k == UnexpectedMessage {
		return "unexpected message"
	}
	return "nondeterministic guards"
}

// Problem is a semantics violation at a state.
type Problem struct {
	Kind   ProblemKind
	Inst   int
	Event  Event
	Msg    Msg
	Detail string
}

// Actions enumerates the enabled actions of a state and any semantics
// problems. For ordered networks only the head of each slot is
// deliverable; for unordered networks every distinct pending message is.
func (r *Runtime) Actions(st *State) ([]Action, []Problem) {
	var acts []Action
	var probs []Problem

	// External triggers.
	for _, inst := range r.Insts {
		for _, trig := range inst.Def.Triggers {
			ev := Event{Trigger: trig}
			t, prob := r.match(st, inst, ev, nil)
			if prob != nil {
				// Triggers with ambiguous guards are still an error;
				// absent transitions are not (the environment simply
				// cannot fire the trigger here).
				if prob.Kind == NonDeterministic {
					probs = append(probs, *prob)
				}
				continue
			}
			if t == nil || t.Defer {
				continue
			}
			acts = append(acts, Action{Inst: inst.Idx, Trans: t, Net: -1})
		}
	}

	// Message deliveries.
	for n, net := range r.Sys.Networks {
		for slot, msgs := range st.Nets[n] {
			if len(msgs) == 0 {
				continue
			}
			limit := len(msgs)
			if net.Kind == Ordered {
				limit = 1
			}
			seen := map[string]bool{}
			for pos := 0; pos < limit; pos++ {
				msg := msgs[pos]
				if net.Kind == Unordered {
					key := encodeMsg(msg)
					if seen[key] {
						continue // identical pending messages branch identically
					}
					seen[key] = true
				}
				instIdx := r.receiverOf(net, slot)
				inst := r.Insts[instIdx]
				ev := Event{Net: net, MsgVar: "Msg"}
				t, prob := r.match(st, inst, ev, msg)
				if prob != nil {
					probs = append(probs, *prob)
					continue
				}
				if t == nil || t.Defer {
					continue // stalled
				}
				acts = append(acts, Action{Inst: instIdx, Trans: t, Net: n, Slot: slot, Pos: pos, Msg: msg})
			}
		}
	}
	return acts, probs
}

// receiverOf resolves a network slot to an instance index.
func (r *Runtime) receiverOf(net *Network, slot int) int {
	ids := r.byDef[net.Receiver]
	if net.Route == RouteStatic {
		return ids[0]
	}
	return ids[slot]
}

// match finds the unique enabled transition for (instance state, event),
// or a stall, or a problem. For message events the candidate transitions'
// own MsgVar binds the fields.
func (r *Runtime) match(st *State, inst *Instance, ev Event, msg Msg) (*Transition, *Problem) {
	d := inst.Def
	ps := st.Procs[inst.Idx]
	cands := r.transIdx[d][transKey(ps.Ctl, ev)]
	if len(cands) == 0 {
		if ev.IsTrigger() {
			return nil, nil
		}
		return nil, &Problem{
			Kind: UnexpectedMessage, Inst: inst.Idx, Event: ev, Msg: msg,
			Detail: fmt.Sprintf("%s in state %s cannot handle %s message %s",
				inst.Name(), d.States.Values[ps.Ctl], ev.Net.Name, r.FormatMsg(ev.Net, msg)),
		}
	}
	base := r.baseEnv(st, inst)
	var hit *Transition
	var catchAllDefer *Transition
	for _, t := range cands {
		if t.Defer && t.Guard == nil {
			// An unguarded stall rule is a lowest-priority catch-all:
			// it applies only when no guarded transition matches.
			catchAllDefer = t
			continue
		}
		env := base
		if !ev.IsTrigger() {
			env = r.extendWithMsg(base, t.Event.MsgVar, ev.Net, msg)
		}
		if t.Guard != nil && !t.Guard.Eval(r.Sys.U, env).Bool() {
			continue
		}
		if hit != nil {
			return nil, &Problem{
				Kind: NonDeterministic, Inst: inst.Idx, Event: ev, Msg: msg,
				Detail: fmt.Sprintf("%s in state %s: guards %s and %s both enabled",
					inst.Name(), d.States.Values[ps.Ctl], hit.GuardString(), t.GuardString()),
			}
		}
		hit = t
	}
	if hit == nil {
		if catchAllDefer != nil {
			return catchAllDefer, nil
		}
		if ev.IsTrigger() {
			return nil, nil
		}
		return nil, &Problem{
			Kind: UnexpectedMessage, Inst: inst.Idx, Event: ev, Msg: msg,
			Detail: fmt.Sprintf("%s in state %s: no guard accepts %s message %s",
				inst.Name(), d.States.Values[ps.Ctl], ev.Net.Name, r.FormatMsg(ev.Net, msg)),
		}
	}
	return hit, nil
}

// baseEnv builds the instance's pre-state environment (vars + Self).
func (r *Runtime) baseEnv(st *State, inst *Instance) expr.Env {
	d := inst.Def
	env := make(expr.Env, len(d.Vars)+6)
	for j, v := range d.Vars {
		env[v.Name] = st.Procs[inst.Idx].Vars[j]
	}
	env[SelfVar] = expr.PIDVal(inst.PID)
	return env
}

func (r *Runtime) extendWithMsg(base expr.Env, msgVar string, net *Network, msg Msg) expr.Env {
	env := base.Clone()
	for j, f := range net.Msg.Fields {
		env[msgVar+"."+f.Name] = msg[j]
	}
	return env
}

// Apply executes an action, returning the successor state.
func (r *Runtime) Apply(st *State, a Action) *State {
	next := st.Clone()
	inst := r.Insts[a.Inst]
	d := inst.Def
	env := r.baseEnv(st, inst)
	if a.Net >= 0 {
		env = r.extendWithMsg(env, a.Trans.Event.MsgVar, r.Sys.Networks[a.Net], a.Msg)
		// Consume the message.
		slot := next.Nets[a.Net][a.Slot]
		next.Nets[a.Net][a.Slot] = append(slot[:a.Pos:a.Pos], slot[a.Pos+1:]...)
	}
	// Parallel assignment: evaluate all RHS in the pre-state.
	newVals := make([]expr.Value, len(a.Trans.Updates))
	for i, u := range a.Trans.Updates {
		newVals[i] = u.Rhs.Eval(r.Sys.U, env)
	}
	for i, u := range a.Trans.Updates {
		next.Procs[a.Inst].Vars[d.VarIndex(u.Var)] = newVals[i]
	}
	next.Procs[a.Inst].Ctl = d.States.Ord(a.Trans.To)
	// Sends: field RHS evaluate in the pre-state scope as well.
	for _, snd := range a.Trans.Sends {
		msg := make(Msg, len(snd.Net.Msg.Fields))
		for j, f := range snd.Net.Msg.Fields {
			msg[j] = expr.ZeroOf(f.T)
		}
		for _, fa := range snd.Fields {
			msg[snd.Net.Msg.FieldIndex(fa.Field)] = fa.Rhs.Eval(r.Sys.U, env)
		}
		n := r.netIdx[snd.Net]
		if snd.TargetSet != nil {
			// Multicast: one copy per member, routed to that member.
			destIdx := snd.Net.Msg.FieldIndex(snd.Net.DestField)
			mask := snd.TargetSet.Eval(r.Sys.U, env).Set()
			for pid := 0; pid < r.Sys.U.NumCaches(); pid++ {
				if mask&(1<<uint(pid)) == 0 {
					continue
				}
				copyMsg := append(Msg(nil), msg...)
				copyMsg[destIdx] = expr.PIDVal(pid)
				next.Nets[n][pid] = append(next.Nets[n][pid], copyMsg)
			}
			continue
		}
		slot := 0
		if snd.Net.Route == RouteByField {
			slot = msg[snd.Net.Msg.FieldIndex(snd.Net.DestField)].PID()
		}
		next.Nets[n][slot] = append(next.Nets[n][slot], msg)
	}
	return next
}

// Encode renders a state as a canonical string key: control states and
// variable payloads per instance, then network contents with unordered
// slots sorted into canonical order.
func (r *Runtime) Encode(st *State) string {
	var b []byte
	for _, p := range st.Procs {
		b = append(b, byte(p.Ctl))
		for _, v := range p.Vars {
			b = v.AppendEncoding(b)
		}
	}
	for n, slots := range st.Nets {
		ordered := r.Sys.Networks[n].Kind == Ordered
		for _, msgs := range slots {
			b = append(b, byte(len(msgs)), '|')
			if ordered {
				for _, m := range msgs {
					b = append(b, encodeMsg(m)...)
				}
			} else {
				keys := make([]string, len(msgs))
				for i, m := range msgs {
					keys[i] = encodeMsg(m)
				}
				sort.Strings(keys)
				for _, k := range keys {
					b = append(b, k...)
				}
			}
		}
	}
	return string(b)
}

func encodeMsg(m Msg) string {
	var b []byte
	for _, v := range m {
		b = v.AppendEncoding(b)
	}
	return string(b)
}

// FormatMsg renders a message with field names.
func (r *Runtime) FormatMsg(net *Network, msg Msg) string {
	parts := make([]string, len(net.Msg.Fields))
	for i, f := range net.Msg.Fields {
		parts[i] = fmt.Sprintf("%s:%s", f.Name, msg[i])
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// FormatAction renders an action for counterexample traces.
func (r *Runtime) FormatAction(a Action) string {
	inst := r.Insts[a.Inst]
	var evt string
	if a.Net < 0 {
		evt = a.Trans.Event.Trigger
	} else {
		net := r.Sys.Networks[a.Net]
		evt = fmt.Sprintf("recv %s %s", net.Name, r.FormatMsg(net, a.Msg))
	}
	return fmt.Sprintf("%s: %s [%s -> %s]", inst.Name(), evt, a.Trans.From, a.Trans.To)
}

// FormatState renders a state for counterexample traces.
func (r *Runtime) FormatState(st *State) string {
	var sb strings.Builder
	for i, inst := range r.Insts {
		p := st.Procs[i]
		fmt.Fprintf(&sb, "%s{%s", inst.Name(), inst.Def.States.Values[p.Ctl])
		for j, v := range inst.Def.Vars {
			fmt.Fprintf(&sb, " %s=%s", v.Name, p.Vars[j])
		}
		sb.WriteString("} ")
	}
	for n, slots := range st.Nets {
		net := r.Sys.Networks[n]
		for slot, msgs := range slots {
			for _, m := range msgs {
				fmt.Fprintf(&sb, "%s[%d]%s ", net.Name, slot, r.FormatMsg(net, m))
			}
		}
	}
	return strings.TrimSpace(sb.String())
}

// InstancesOf returns the instance indices of a definition.
func (r *Runtime) InstancesOf(d *ProcDef) []int { return r.byDef[d] }

// VarOf reads a process variable of an instance in a state.
func (r *Runtime) VarOf(st *State, instIdx int, name string) expr.Value {
	inst := r.Insts[instIdx]
	i := inst.Def.VarIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("efsm: instance %s has no variable %s", inst.Name(), name))
	}
	return st.Procs[instIdx].Vars[i]
}

// CtlOf reads an instance's control-state name in a state.
func (r *Runtime) CtlOf(st *State, instIdx int) string {
	inst := r.Insts[instIdx]
	return inst.Def.States.Values[st.Procs[instIdx].Ctl]
}
