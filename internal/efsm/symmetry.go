package efsm

import (
	"fmt"
	"sort"

	"transit/internal/expr"
)

// Symmetry reduction for replicated processes. Cache-coherence protocols
// are symmetric in cache identity: permuting the PIDs of the replicated
// instances (and every PID-valued datum — process variables, in-flight
// message fields, by-field network slots) maps reachable states to
// reachable states. The model checker exploits that by exploring one
// canonical representative per orbit, which shrinks the reachable set by
// up to |caches|! (Alur et al., "Automatic Completion of Distributed
// Protocols with Symmetry"). This file provides the group machinery: PID
// permutations, their action on states and actions, the symmetry check on
// a System, and an exact minimum-encoding canonicalizer.

// Perm is a permutation of the PID domain 0..n-1, mapping old PID p to new
// PID Perm[p]. A nil Perm acts as the identity everywhere it is accepted.
type Perm []int

// IdentityPerm returns the identity permutation on n PIDs.
func IdentityPerm(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// IsIdentity reports whether the permutation fixes every PID (nil counts).
func (p Perm) IsIdentity() bool {
	for i, v := range p {
		if v != i {
			return false
		}
	}
	return true
}

// Apply maps one PID (identity on a nil Perm).
func (p Perm) Apply(pid int) int {
	if p == nil {
		return pid
	}
	return p[pid]
}

// Inverse returns the inverse permutation (nil for nil).
func (p Perm) Inverse() Perm {
	if p == nil {
		return nil
	}
	inv := make(Perm, len(p))
	for i, v := range p {
		inv[v] = i
	}
	return inv
}

// Compose returns p∘q: the permutation applying q first, then p. Either
// operand may be nil (identity).
func (p Perm) Compose(q Perm) Perm {
	if p == nil {
		return q
	}
	if q == nil {
		return p
	}
	out := make(Perm, len(p))
	for i := range out {
		out[i] = p[q[i]]
	}
	return out
}

// permuteValue applies a PID permutation to a value: PIDs map through the
// permutation, sets permute element-wise, everything else is fixed.
func permuteValue(v expr.Value, pi Perm) expr.Value {
	if pi == nil {
		return v
	}
	switch v.Type().Kind {
	case expr.KindPID:
		return expr.PIDVal(pi[v.PID()])
	case expr.KindSet:
		m := v.Set()
		low := uint64(1)<<uint(len(pi)) - 1
		out := m &^ low
		for p := 0; p < len(pi); p++ {
			if m&(1<<uint(p)) != 0 {
				out |= 1 << uint(pi[p])
			}
		}
		return expr.SetVal(out)
	}
	return v
}

// permuteMsg value-permutes every field of a message.
func permuteMsg(m Msg, pi Perm) Msg {
	out := make(Msg, len(m))
	for i, v := range m {
		out[i] = permuteValue(v, pi)
	}
	return out
}

// Permute applies a PID permutation to a whole state: the replicated
// instance with PID q takes the (value-permuted) local state of the
// instance with PID pi⁻¹(q), singleton instances keep their slot with
// values permuted, and by-field network slots relocate the same way with
// per-slot message order preserved.
func (r *Runtime) Permute(st *State, pi Perm) *State {
	if pi == nil || pi.IsIdentity() {
		return st.Clone()
	}
	inv := pi.Inverse()
	out := &State{
		Procs: make([]ProcState, len(st.Procs)),
		Nets:  make([][][]Msg, len(st.Nets)),
	}
	for _, inst := range r.Insts {
		src := inst.Idx
		if inst.Def.Replicated {
			src = r.byDef[inst.Def][inv[inst.PID]]
		}
		sp := st.Procs[src]
		vars := make([]expr.Value, len(sp.Vars))
		for j, v := range sp.Vars {
			vars[j] = permuteValue(v, pi)
		}
		out.Procs[inst.Idx] = ProcState{Ctl: sp.Ctl, Vars: vars}
	}
	for n, slots := range st.Nets {
		byField := r.Sys.Networks[n].Route == RouteByField
		out.Nets[n] = make([][]Msg, len(slots))
		for q := range slots {
			srcSlot := q
			if byField {
				srcSlot = inv[q]
			}
			msgs := make([]Msg, len(slots[srcSlot]))
			for m, msg := range slots[srcSlot] {
				msgs[m] = permuteMsg(msg, pi)
			}
			out.Nets[n][q] = msgs
		}
	}
	return out
}

// PermuteAction maps an action through a PID permutation, so that
// Apply/Permute commute: Permute(Apply(st, a), pi) equals
// Apply(Permute(st, pi), PermuteAction(a, pi)).
func (r *Runtime) PermuteAction(a Action, pi Perm) Action {
	if pi == nil || pi.IsIdentity() {
		return a
	}
	out := a
	inst := r.Insts[a.Inst]
	if inst.Def.Replicated {
		out.Inst = r.byDef[inst.Def][pi[inst.PID]]
	}
	if a.Net >= 0 {
		if r.Sys.Networks[a.Net].Route == RouteByField {
			out.Slot = pi[a.Slot]
		}
		out.Msg = permuteMsg(a.Msg, pi)
	}
	return out
}

// PIDSymmetric reports whether the system's behaviour is invariant under
// PID permutation: there is at least one replicated definition, none opted
// out via Asymmetric, and no transition expression singles out a concrete
// PID (a PID literal, or a set literal other than {} and the full set).
// Initial values are deliberately NOT checked: an asymmetric initial state
// (e.g. a PID variable defaulting to C0) only seeds the search, it does
// not break the soundness of orbit canonicalization, which needs the
// transition relation — not the initial state — to be symmetric.
// Invariants are arbitrary Go functions and cannot be checked here; the
// model checker documents the requirement that they be PID-symmetric.
func (s *System) PIDSymmetric() error {
	if s.U.NumCaches() < 2 {
		return fmt.Errorf("efsm: %s: symmetry needs at least 2 caches", s.Name)
	}
	replicated := false
	for _, d := range s.Defs {
		if d.Replicated {
			if d.Asymmetric {
				return fmt.Errorf("efsm: process %s is declared asymmetric", d.Name)
			}
			replicated = true
		}
		for _, t := range d.Transitions {
			ctx := fmt.Sprintf("efsm: %s transition (%s, %s)", d.Name, t.From, t.Event)
			if err := symmetricExpr(s.U, t.Guard, ctx+" guard"); err != nil {
				return err
			}
			for _, u := range t.Updates {
				if err := symmetricExpr(s.U, u.Rhs, ctx+" update "+u.Var); err != nil {
					return err
				}
			}
			for _, snd := range t.Sends {
				if err := symmetricExpr(s.U, snd.TargetSet, ctx+" multicast target"); err != nil {
					return err
				}
				for _, f := range snd.Fields {
					if err := symmetricExpr(s.U, f.Rhs, ctx+" send field "+f.Field); err != nil {
						return err
					}
				}
			}
		}
	}
	if !replicated {
		return fmt.Errorf("efsm: %s has no replicated processes", s.Name)
	}
	return nil
}

// symmetricExpr scans one expression for PID-distinguishing literals:
// Const nodes and nullary function symbols (C0, C1, ... are nullary funcs
// in the vocabulary) whose value names a concrete PID or a set other than
// {} and the full set.
func symmetricExpr(u *expr.Universe, e expr.Expr, ctx string) error {
	if e == nil {
		return nil
	}
	check := func(v expr.Value) error {
		switch v.Type().Kind {
		case expr.KindPID:
			return fmt.Errorf("%s: PID literal %s breaks symmetry", ctx, v)
		case expr.KindSet:
			if m := v.Set(); m != 0 && m != u.SetMask() {
				return fmt.Errorf("%s: set literal %s breaks symmetry", ctx, v)
			}
		}
		return nil
	}
	switch n := e.(type) {
	case *expr.Const:
		return check(n.Val)
	case *expr.Apply:
		if len(n.Args) == 0 {
			return check(n.Eval(u, nil))
		}
		for _, a := range n.Args {
			if err := symmetricExpr(u, a, ctx); err != nil {
				return err
			}
		}
	}
	return nil
}

// MaxSymmetryPIDs caps the exact canonicalizer: it scans all n!
// permutations per state, which stops being a win past 8 PIDs (40320
// permutations).
const MaxSymmetryPIDs = 8

// SymGroup is the full symmetric group over the PID domain, precomputed
// for a runtime whose system passed PIDSymmetric. It is immutable and
// safe to share across goroutines; each goroutine takes its own Encoder.
type SymGroup struct {
	r     *Runtime
	perms []Perm
	invs  []Perm
}

// NewSymGroup validates that the runtime's system is PID-symmetric and
// within the exact canonicalizer's domain cap, then precomputes the
// permutation group in lexicographic order (perms[0] is the identity).
func NewSymGroup(r *Runtime) (*SymGroup, error) {
	if err := r.Sys.PIDSymmetric(); err != nil {
		return nil, err
	}
	n := r.Sys.U.NumCaches()
	if n > MaxSymmetryPIDs {
		return nil, fmt.Errorf("efsm: %d caches exceeds the %d-PID exact canonicalization cap", n, MaxSymmetryPIDs)
	}
	g := &SymGroup{r: r}
	var gen func(prefix Perm, rest []int)
	gen = func(prefix Perm, rest []int) {
		if len(rest) == 0 {
			p := append(Perm(nil), prefix...)
			g.perms = append(g.perms, p)
			g.invs = append(g.invs, p.Inverse())
			return
		}
		for i, v := range rest {
			next := make([]int, 0, len(rest)-1)
			next = append(next, rest[:i]...)
			next = append(next, rest[i+1:]...)
			gen(append(prefix, v), next)
		}
	}
	gen(make(Perm, 0, n), IdentityPerm(n))
	return g, nil
}

// Degree is the number of PIDs the group acts on.
func (g *SymGroup) Degree() int { return g.r.Sys.U.NumCaches() }

// Size is the group order, n!.
func (g *SymGroup) Size() int { return len(g.perms) }

// Encoder returns a canonicalizer with its own scratch buffers. Encoders
// are cheap; take one per goroutine (they are not safe for concurrent
// use, the group behind them is).
func (g *SymGroup) Encoder() *CanonEncoder {
	return &CanonEncoder{g: g}
}

// CanonEncoder computes a state's canonical key: the lexicographically
// least Runtime.Encode image over every PID permutation. Exactness
// matters twice over — it makes the key a true orbit invariant (permuted
// runs of a whole system reach the same canonical set), and it lets the
// orbit size be counted in the same scan: the permutations achieving the
// minimum form a coset of the stabilizer, so |orbit| = n! / #minima.
type CanonEncoder struct {
	g       *SymGroup
	scratch []byte
	best    []byte
	keybuf  []string
}

// Canonicalize returns the canonical key of st, the permutation sigma
// with Encode(Permute(st, sigma)) == key (the lexicographically first
// such permutation, so the choice is deterministic), and the orbit size
// |S_n| / |stabilizer(st)|. Each permutation's encoding is compared to
// the running minimum as it is built and abandoned on the first byte
// that exceeds it, which prunes most of the n! scan in practice.
func (e *CanonEncoder) Canonicalize(st *State) (string, Perm, int) {
	minima := 1
	var sigma Perm
	for i, pi := range e.g.perms {
		if i == 0 {
			e.best = e.appendPermEncoding(e.best[:0], st, pi, e.g.invs[i])
			sigma = pi
			continue
		}
		var cmp int
		e.scratch, cmp = e.appendPermEncodingVs(e.scratch[:0], st, pi, e.g.invs[i], e.best)
		switch {
		case cmp < 0:
			e.best, e.scratch = e.scratch, e.best
			sigma = pi
			minima = 1
		case cmp == 0:
			minima++
		}
	}
	return string(e.best), sigma, len(e.g.perms) / minima
}

// appendPermEncoding writes Encode(Permute(st, pi)) without materializing
// the permuted state: instances read their source's local state with
// values mapped through pi, by-field slots relocate through inv, and
// unordered slots sort their permuted message encodings, mirroring
// Runtime.Encode byte for byte (the identity permutation reproduces it
// exactly; a test pins that).
func (e *CanonEncoder) appendPermEncoding(dst []byte, st *State, pi, inv Perm) []byte {
	r := e.g.r
	for _, inst := range r.Insts {
		src := inst.Idx
		if inst.Def.Replicated {
			src = r.byDef[inst.Def][inv[inst.PID]]
		}
		p := st.Procs[src]
		dst = append(dst, byte(p.Ctl))
		for _, v := range p.Vars {
			dst = permuteValue(v, pi).AppendEncoding(dst)
		}
	}
	for n, slots := range st.Nets {
		net := r.Sys.Networks[n]
		byField := net.Route == RouteByField
		ordered := net.Kind == Ordered
		for q := range slots {
			srcSlot := q
			if byField {
				srcSlot = inv[q]
			}
			msgs := slots[srcSlot]
			dst = append(dst, byte(len(msgs)), '|')
			if ordered {
				for _, m := range msgs {
					dst = appendPermMsg(dst, m, pi)
				}
			} else {
				keys := e.keybuf[:0]
				for _, m := range msgs {
					keys = append(keys, string(appendPermMsg(nil, m, pi)))
				}
				sort.Strings(keys)
				for _, k := range keys {
					dst = append(dst, k...)
				}
				e.keybuf = keys[:0]
			}
		}
	}
	return dst
}

// appendPermEncodingVs is appendPermEncoding with pruning: the bytes
// written so far are compared against best after every instance and
// network slot, and encoding stops with cmp > 0 as soon as the prefix is
// strictly greater — that permutation cannot be the minimum. It returns
// cmp < 0 (dst is a complete encoding strictly less than best), 0 (equal
// to best), or > 0 (abandoned, dst is partial).
func (e *CanonEncoder) appendPermEncodingVs(dst []byte, st *State, pi, inv Perm, best []byte) ([]byte, int) {
	r := e.g.r
	cmp, pos := 0, 0
	// step compares the newly appended region; returns true to abandon.
	step := func() bool {
		if cmp < 0 {
			return false
		}
		for ; pos < len(dst); pos++ {
			if pos >= len(best) {
				cmp = 1
				return true
			}
			if dst[pos] == best[pos] {
				continue
			}
			if dst[pos] < best[pos] {
				cmp = -1
				return false
			}
			cmp = 1
			return true
		}
		return false
	}
	for _, inst := range r.Insts {
		src := inst.Idx
		if inst.Def.Replicated {
			src = r.byDef[inst.Def][inv[inst.PID]]
		}
		p := st.Procs[src]
		dst = append(dst, byte(p.Ctl))
		for _, v := range p.Vars {
			dst = permuteValue(v, pi).AppendEncoding(dst)
		}
		if step() {
			return dst, cmp
		}
	}
	for n, slots := range st.Nets {
		net := r.Sys.Networks[n]
		byField := net.Route == RouteByField
		ordered := net.Kind == Ordered
		for q := range slots {
			srcSlot := q
			if byField {
				srcSlot = inv[q]
			}
			msgs := slots[srcSlot]
			dst = append(dst, byte(len(msgs)), '|')
			if ordered {
				for _, m := range msgs {
					dst = appendPermMsg(dst, m, pi)
				}
			} else {
				keys := e.keybuf[:0]
				for _, m := range msgs {
					keys = append(keys, string(appendPermMsg(nil, m, pi)))
				}
				sort.Strings(keys)
				for _, k := range keys {
					dst = append(dst, k...)
				}
				e.keybuf = keys[:0]
			}
			if step() {
				return dst, cmp
			}
		}
	}
	if cmp == 0 && len(dst) < len(best) {
		cmp = -1
	}
	return dst, cmp
}

func appendPermMsg(dst []byte, m Msg, pi Perm) []byte {
	for _, v := range m {
		dst = permuteValue(v, pi).AppendEncoding(dst)
	}
	return dst
}
