package smt

import (
	"context"
	"fmt"
	"sort"
	"time"

	"transit/internal/expr"
	"transit/internal/obs"
	"transit/internal/sat"
)

// Session is a persistent, incremental SMT solving context: one encoder
// and one SAT solver shared across a series of queries. Variable bit
// vectors, Tseitin sub-circuits, and vocabulary gadgets are encoded once
// and reused; the SAT solver keeps its learned clauses, variable
// activities, and saved phases between queries.
//
// Constraints enter through Assert, which guards the formula's root with a
// fresh activation literal: the formula only binds in queries that assume
// the assertion (SolveAssuming), and Retract turns it off permanently by
// forcing the activation literal false. Tseitin definition clauses are
// globally valid (they merely define gate outputs) and are left unguarded,
// which is what makes circuit reuse sound.
//
// Sat answers carry a canonical model: the lexicographically least
// satisfying assignment, taking variables from the highest name to the
// lowest with each domain in expr.ValuesOf order. That is exactly the
// first assignment SolveBrute's odometer visits, so the model is a pure
// function of the active theory-level formula — independent of encoding
// layout, learned clauses, and search history. One-shot and incremental
// solving therefore return identical models (the answer-parity property
// the synthesis layers rely on), and both cross-validate against the
// brute-force reference directly. Options.Hint shifts the preference
// toward given values (the model closest to the hint), keeping the same
// purity: the model is then a function of (formula, hint).
//
// A Session is not safe for concurrent use.
type Session struct {
	u          *expr.Universe
	enc        *encoder
	vars       []*expr.Var
	minOrder   []*expr.Var // canonical minimization order: reverse-sorted names
	persistent bool        // counted in smt.sessions / smt.incremental_solve_ms
	counted    bool        // smt.sessions already incremented
	mark       sessionMark // per-query delta baseline
	stats      SessionStats
}

// sessionMark snapshots cumulative counters at the end of a query so the
// next query can report deltas.
type sessionMark struct {
	vars         int
	clauses      int64
	reused       int64
	conflicts    int64
	decisions    int64
	propagations int64
	assumpSolves int64
}

// SessionStats aggregates a session's lifetime work.
type SessionStats struct {
	Queries          int
	ClausesEncoded   int64
	ClausesReused    int64
	AssumptionSolves int64
	Conflicts        int64
}

// Assertion is a retractable constraint held by a session.
type Assertion struct {
	sess    *Session
	act     sat.Lit
	retired bool
}

// NewSession opens an incremental session over the given typed variables.
// Every formula later asserted must be closed over these variables.
func NewSession(u *expr.Universe, vars []*expr.Var) (*Session, error) {
	return newSession(u, vars, true)
}

func newSession(u *expr.Universe, vars []*expr.Var, persistent bool) (*Session, error) {
	enc, err := newEncoder(u, vars)
	if err != nil {
		return nil, err
	}
	minOrder := append([]*expr.Var(nil), vars...)
	sort.Slice(minOrder, func(i, j int) bool { return minOrder[i].Name > minOrder[j].Name })
	return &Session{u: u, enc: enc, vars: vars, minOrder: minOrder, persistent: persistent}, nil
}

// Stats returns the session's lifetime counters.
func (s *Session) Stats() SessionStats { return s.stats }

// NumVars reports the current SAT variable count of the shared solver.
func (s *Session) NumVars() int { return s.enc.s.NumVars() }

// Assert encodes a Boolean formula into the session and guards its root
// with a fresh activation literal. The constraint only holds in queries
// that pass the returned assertion to SolveAssuming. Encoding work done
// here is charged to the next query's stats.
func (s *Session) Assert(formula expr.Expr) (*Assertion, error) {
	if formula.Type() != expr.BoolType {
		return nil, fmt.Errorf("smt: formula has type %s, want Bool", formula.Type())
	}
	root, err := s.enc.encode(formula)
	if err != nil {
		return nil, err
	}
	act := s.enc.fresh()
	s.enc.addClause(act.Not(), root[0])
	return &Assertion{sess: s, act: act}, nil
}

// Retract permanently disables an assertion by forcing its activation
// literal false; the underlying circuit stays cached for reuse. Retracting
// nil or an already-retracted assertion is a no-op. A retracted assertion
// must no longer be passed to SolveAssuming.
func (s *Session) Retract(a *Assertion) {
	if a == nil || a.retired || a.sess != s {
		return
	}
	a.retired = true
	s.enc.addClause(a.act.Not())
}

// Solve checks the given formula alone (asserting and then retracting it)
// and decodes all session variables. It is the session-based equivalent of
// the package-level SolveOptCtx.
func (s *Session) Solve(ctx context.Context, formula expr.Expr, opts Options) (Result, error) {
	res, _, err := s.SolveStats(ctx, formula, opts)
	return res, err
}

// SolveStats is Solve, additionally reporting per-query statistics.
func (s *Session) SolveStats(ctx context.Context, formula expr.Expr, opts Options) (Result, Stats, error) {
	return s.query(ctx, opts, func(qctx context.Context) (Result, Stats, error) {
		_, encSpan := obs.Start(qctx, "smt.encode")
		a, err := s.Assert(formula)
		encSpan.SetAttr(obs.Int("sat_vars", s.enc.s.NumVars()), obs.Int64("clauses", s.enc.numClauses))
		encSpan.End()
		if err != nil {
			return Result{}, Stats{}, err
		}
		defer s.Retract(a)
		return s.solveCore(qctx, []*Assertion{a}, s.vars, opts)
	})
}

// SolveAssuming solves the conjunction of the given assertions (with every
// other assertion inactive) and, on Sat, decodes the canonical model
// restricted to decodeVars (nil means all session variables).
func (s *Session) SolveAssuming(ctx context.Context, under []*Assertion, decodeVars []*expr.Var, opts Options) (Result, Stats, error) {
	return s.query(ctx, opts, func(qctx context.Context) (Result, Stats, error) {
		return s.solveCore(qctx, under, decodeVars, opts)
	})
}

// query wraps one SMT query in the "smt.solve" span and metric recording
// shared by the one-shot and incremental entry points.
func (s *Session) query(ctx context.Context, opts Options, body func(context.Context) (Result, Stats, error)) (res Result, stats Stats, err error) {
	ctx, span := obs.Start(ctx, "smt.solve", obs.Int("vars", len(s.vars)))
	start := time.Now()
	defer func() {
		span.SetAttr(obs.Str("status", statusName(res.Status)),
			obs.Int("sat_vars", stats.SATVars),
			obs.Int64("clauses", stats.Clauses),
			obs.Int64("conflicts", stats.Conflicts),
			obs.Int64("decisions", stats.Decisions),
			obs.Int64("propagations", stats.Propagated))
		if err != nil {
			span.SetAttr(obs.Str("error", err.Error()))
		}
		span.End()
		if reg := obs.MetricsFrom(ctx); reg != nil {
			if s.persistent && !s.counted {
				s.counted = true
				reg.Counter("smt.sessions").Inc()
			}
			reg.Counter("smt.queries").Inc()
			switch res.Status {
			case Sat:
				reg.Counter("smt.sat").Inc()
			case Unsat:
				reg.Counter("smt.unsat").Inc()
			default:
				reg.Counter("smt.unknown").Inc()
			}
			reg.Counter("smt.sat_vars").Add(int64(stats.NewVars))
			reg.Counter("smt.clauses").Add(stats.Clauses)
			reg.Counter("smt.clauses_reused").Add(stats.ClausesReused)
			reg.Counter("sat.conflicts").Add(stats.Conflicts)
			reg.Counter("sat.decisions").Add(stats.Decisions)
			reg.Counter("sat.propagations").Add(stats.Propagated)
			reg.Counter("sat.assumption_solves").Add(stats.AssumptionSolves)
			reg.Counter("sat.learned_kept").Add(stats.LearnedKept)
			dur := time.Since(start)
			reg.Histogram("smt.solve_ms").Observe(dur)
			if s.persistent {
				reg.Histogram("smt.incremental_solve_ms").Observe(dur)
			}
		}
	}()
	res, stats, err = body(ctx)
	return res, stats, err
}

// solveCore runs one query: SAT solve under the assertions' activation
// literals, canonical-model minimization, decoding, and delta bookkeeping.
func (s *Session) solveCore(ctx context.Context, under []*Assertion, decodeVars []*expr.Var, opts Options) (Result, Stats, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, Stats{}, fmt.Errorf("smt: %w", err)
	}
	assumps := make([]sat.Lit, 0, len(under))
	for _, a := range under {
		switch {
		case a == nil || a.sess != s:
			return Result{}, Stats{}, fmt.Errorf("smt: assertion does not belong to this session")
		case a.retired:
			return Result{}, Stats{}, fmt.Errorf("smt: assertion already retracted")
		}
		assumps = append(assumps, a.act)
	}
	sv := s.enc.s
	learnedKept := int64(sv.NumLearnts())
	sv.MaxConflicts = opts.MaxConflicts
	sv.Interrupt = ctx.Done()
	_, satSpan := obs.Start(ctx, "sat.search",
		obs.Int("sat_vars", sv.NumVars()), obs.Int64("clauses", s.enc.numClauses))
	st := sv.Solve(assumps...)
	var model expr.Env
	var decodeErr error
	if st == sat.Sat {
		var patterns map[string]uint64
		patterns, st = s.canonicalize(assumps, opts.Hint)
		if st == sat.Sat {
			model, decodeErr = s.decode(decodeVars, patterns)
		}
	}
	satSpan.SetAttr(obs.Str("status", statusName(st)),
		obs.Int64("conflicts", sv.Stats.Conflicts-s.mark.conflicts),
		obs.Int64("decisions", sv.Stats.Decisions-s.mark.decisions),
		obs.Int64("propagations", sv.Stats.Propagations-s.mark.propagations))
	satSpan.End()

	stats := Stats{
		SATVars:          sv.NumVars(),
		Clauses:          s.enc.numClauses - s.mark.clauses,
		Conflicts:        sv.Stats.Conflicts - s.mark.conflicts,
		Decisions:        sv.Stats.Decisions - s.mark.decisions,
		Propagated:       sv.Stats.Propagations - s.mark.propagations,
		NewVars:          sv.NumVars() - s.mark.vars,
		ClausesReused:    s.enc.reused - s.mark.reused,
		AssumptionSolves: sv.Stats.AssumptionSolves - s.mark.assumpSolves,
		LearnedKept:      learnedKept,
	}
	s.mark = sessionMark{
		vars:         sv.NumVars(),
		clauses:      s.enc.numClauses,
		reused:       s.enc.reused,
		conflicts:    sv.Stats.Conflicts,
		decisions:    sv.Stats.Decisions,
		propagations: sv.Stats.Propagations,
		assumpSolves: sv.Stats.AssumptionSolves,
	}
	s.stats.Queries++
	s.stats.ClausesEncoded += stats.Clauses
	s.stats.ClausesReused += stats.ClausesReused
	s.stats.AssumptionSolves += stats.AssumptionSolves
	s.stats.Conflicts += stats.Conflicts

	if st == sat.Unknown && ctx.Err() != nil {
		return Result{}, stats, fmt.Errorf("smt: %w", ctx.Err())
	}
	if decodeErr != nil {
		return Result{}, stats, decodeErr
	}
	res := Result{Status: st}
	if st == sat.Sat {
		res.Model = model
	}
	return res, stats, nil
}

// canonicalize shrinks the solver's current model to the canonical one.
// Variables are processed from the highest name down, each bit from the
// most significant down, preferring — for hinted variables — the hint's
// bit, and otherwise the polarity that comes first in expr.ValuesOf order
// (0, except the Int sign bit, where the negative half precedes). With no
// hint this is the lexicographically least satisfying assignment; with a
// hint, the satisfying assignment closest to it. When the solver's model
// already agrees with the preferred polarity the bit is fixed for free;
// otherwise a single assumption probe decides it — Sat adopts the improved
// model, Unsat proves every remaining model takes the other polarity.
func (s *Session) canonicalize(assumps []sat.Lit, hint expr.Env) (map[string]uint64, sat.Status) {
	sv := s.enc.s
	fixed := append([]sat.Lit(nil), assumps...)
	snap := sv.Model()
	patterns := make(map[string]uint64, len(s.minOrder))
	for _, v := range s.minOrder {
		ev := s.enc.vars[v.Name]
		w := len(ev.bits)
		hintPat, hinted := uint64(0), false
		if hv, ok := hint[v.Name]; ok {
			hintPat, hinted = s.enc.valuePattern(ev.t, hv)
		}
		var pattern uint64
		for i := w - 1; i >= 0; i-- {
			bit := ev.bits[i]
			// Preferred polarity: the hint's bit, or canonical value order.
			var wantOne bool
			if hinted {
				wantOne = hintPat&(uint64(1)<<uint(i)) != 0
			} else {
				wantOne = v.VT.Kind == expr.KindInt && i == w-1
			}
			prefer := bit.Not()
			if wantOne {
				prefer = bit
			}
			// Current model's polarity for this bit (constant-folded bits
			// alias trueLit and decode like any other literal).
			has := snap[bit.Var()] != bit.Neg()
			if has != wantOne {
				switch sv.Solve(append(fixed, prefer)...) {
				case sat.Sat:
					snap = sv.Model()
				case sat.Unsat:
					prefer = prefer.Not()
					wantOne = !wantOne
				default:
					return nil, sat.Unknown
				}
			}
			fixed = append(fixed, prefer)
			if wantOne {
				pattern |= uint64(1) << uint(i)
			}
		}
		patterns[v.Name] = pattern
	}
	return patterns, sat.Sat
}

// decode projects canonical bit patterns onto the requested variables.
func (s *Session) decode(decodeVars []*expr.Var, patterns map[string]uint64) (expr.Env, error) {
	if decodeVars == nil {
		decodeVars = s.vars
	}
	env := make(expr.Env, len(decodeVars))
	for _, v := range decodeVars {
		ev, ok := s.enc.vars[v.Name]
		if !ok {
			return nil, fmt.Errorf("smt: decode variable %s not declared in session", v.Name)
		}
		env[v.Name] = s.enc.patternValue(ev.t, patterns[v.Name])
	}
	return env, nil
}

// BruteSession mirrors the Session API over the brute-force reference
// solver (SolveBrute): assertions accumulate as formulas, SolveAssuming
// enumerates the domain product of the active conjunction. Because
// SolveBrute's first satisfying assignment is exactly the Session's
// canonical model, the two must agree literally — the cross-validation
// hook used by the differential tests.
type BruteSession struct {
	u    *expr.Universe
	vars []*expr.Var
	max  uint64
}

// BruteAssertion is a retractable constraint held by a BruteSession.
type BruteAssertion struct {
	formula expr.Expr
	retired bool
}

// NewBruteSession opens a brute-force reference session; maxAssignments
// bounds the domain product as in SolveBrute.
func NewBruteSession(u *expr.Universe, vars []*expr.Var, maxAssignments uint64) *BruteSession {
	return &BruteSession{u: u, vars: vars, max: maxAssignments}
}

// Assert records a formula; it only binds in queries that assume it.
func (b *BruteSession) Assert(formula expr.Expr) *BruteAssertion {
	return &BruteAssertion{formula: formula}
}

// Retract permanently disables an assertion.
func (b *BruteSession) Retract(a *BruteAssertion) {
	if a != nil {
		a.retired = true
	}
}

// SolveAssuming enumerates the conjunction of the given assertions and, on
// Sat, projects the first (canonical) model onto decodeVars (nil = all).
func (b *BruteSession) SolveAssuming(under []*BruteAssertion, decodeVars []*expr.Var) (Result, error) {
	conj := expr.True()
	for _, a := range under {
		if a == nil || a.retired {
			return Result{}, fmt.Errorf("smt: brute assertion retracted or nil")
		}
		conj = expr.And(conj, a.formula)
	}
	res, err := SolveBrute(b.u, b.vars, conj, b.max)
	if err != nil || res.Status != Sat {
		return res, err
	}
	if decodeVars == nil {
		return res, nil
	}
	model := make(expr.Env, len(decodeVars))
	for _, v := range decodeVars {
		val, ok := res.Model[v.Name]
		if !ok {
			return Result{}, fmt.Errorf("smt: decode variable %s not declared in brute session", v.Name)
		}
		model[v.Name] = val
	}
	return Result{Status: Sat, Model: model}, nil
}
