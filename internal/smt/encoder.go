package smt

import (
	"fmt"

	"transit/internal/expr"
	"transit/internal/sat"
)

// encoder bit-blasts expressions over a Universe into a SAT instance.
// Every expression node becomes a little-endian vector of literals:
// Bool = 1 bit, Int = W bits (two's complement), PID = ceil(log2 n) bits
// (range-constrained), Set = n bits, Enum = ceil(log2 k) bits
// (range-constrained).
type encoder struct {
	u          *expr.Universe
	s          *sat.Solver
	numClauses int64
	trueLit    sat.Lit
	vars       map[string]encVar
	order      []string
	cache      map[expr.Expr][]sat.Lit
	cost       map[expr.Expr]int64 // clauses emitted when the node was first encoded
	reused     int64               // cumulative clauses avoided via cache hits
}

type encVar struct {
	t    expr.Type
	bits []sat.Lit
}

func newEncoder(u *expr.Universe, vars []*expr.Var) (*encoder, error) {
	e := &encoder{
		u:     u,
		s:     sat.New(),
		vars:  make(map[string]encVar, len(vars)),
		cache: make(map[expr.Expr][]sat.Lit),
		cost:  make(map[expr.Expr]int64),
	}
	// A dedicated always-true literal anchors constants.
	e.trueLit = e.fresh()
	e.addClause(e.trueLit)
	for _, v := range vars {
		if _, dup := e.vars[v.Name]; dup {
			return nil, fmt.Errorf("smt: duplicate variable %s", v.Name)
		}
		bits := make([]sat.Lit, e.widthOf(v.VT))
		for i := range bits {
			bits[i] = e.fresh()
		}
		e.vars[v.Name] = encVar{t: v.VT, bits: bits}
		e.order = append(e.order, v.Name)
		e.constrainDomain(v.VT, bits)
	}
	return e, nil
}

func (e *encoder) addClause(lits ...sat.Lit) {
	e.s.AddClause(lits...)
	e.numClauses++
}

func (e *encoder) fresh() sat.Lit { return sat.MkLit(e.s.NewVar(), false) }

func (e *encoder) falseLit() sat.Lit { return e.trueLit.Not() }

func (e *encoder) isTrue(l sat.Lit) bool  { return l == e.trueLit }
func (e *encoder) isFalse(l sat.Lit) bool { return l == e.trueLit.Not() }
func (e *encoder) isConst(l sat.Lit) bool { return e.isTrue(l) || e.isFalse(l) }

// widthOf reports the number of bits used for a type.
func (e *encoder) widthOf(t expr.Type) int {
	switch t.Kind {
	case expr.KindBool:
		return 1
	case expr.KindInt:
		return int(e.u.IntWidth())
	case expr.KindPID:
		return bitsFor(e.u.NumCaches())
	case expr.KindSet:
		return e.u.NumCaches()
	case expr.KindEnum:
		return bitsFor(len(t.Enum.Values))
	}
	panic("smt: widthOf on invalid type")
}

// bitsFor is the number of bits needed to represent values 0..n-1.
func bitsFor(n int) int {
	b := 0
	for (1 << uint(b)) < n {
		b++
	}
	return b
}

// constrainDomain blocks out-of-range patterns for PID and Enum variables.
func (e *encoder) constrainDomain(t expr.Type, bits []sat.Lit) {
	var n int
	switch t.Kind {
	case expr.KindPID:
		n = e.u.NumCaches()
	case expr.KindEnum:
		n = len(t.Enum.Values)
	default:
		return
	}
	for v := n; v < (1 << uint(len(bits))); v++ {
		clause := make([]sat.Lit, len(bits))
		for i, b := range bits {
			if v&(1<<uint(i)) != 0 {
				clause[i] = b.Not()
			} else {
				clause[i] = b
			}
		}
		e.addClause(clause...)
	}
}

// ---- gates with constant folding ----

func (e *encoder) and2(a, b sat.Lit) sat.Lit {
	switch {
	case e.isFalse(a) || e.isFalse(b):
		return e.falseLit()
	case e.isTrue(a):
		return b
	case e.isTrue(b):
		return a
	case a == b:
		return a
	case a == b.Not():
		return e.falseLit()
	}
	x := e.fresh()
	e.addClause(x.Not(), a)
	e.addClause(x.Not(), b)
	e.addClause(x, a.Not(), b.Not())
	return x
}

func (e *encoder) or2(a, b sat.Lit) sat.Lit {
	return e.and2(a.Not(), b.Not()).Not()
}

func (e *encoder) xor2(a, b sat.Lit) sat.Lit {
	switch {
	case e.isFalse(a):
		return b
	case e.isFalse(b):
		return a
	case e.isTrue(a):
		return b.Not()
	case e.isTrue(b):
		return a.Not()
	case a == b:
		return e.falseLit()
	case a == b.Not():
		return e.trueLit
	}
	x := e.fresh()
	e.addClause(x.Not(), a, b)
	e.addClause(x.Not(), a.Not(), b.Not())
	e.addClause(x, a, b.Not())
	e.addClause(x, a.Not(), b)
	return x
}

func (e *encoder) xnor2(a, b sat.Lit) sat.Lit { return e.xor2(a, b).Not() }

// mux is sel ? a : b.
func (e *encoder) mux(sel, a, b sat.Lit) sat.Lit {
	switch {
	case e.isTrue(sel):
		return a
	case e.isFalse(sel):
		return b
	case a == b:
		return a
	}
	x := e.fresh()
	e.addClause(sel.Not(), a.Not(), x)
	e.addClause(sel.Not(), a, x.Not())
	e.addClause(sel, b.Not(), x)
	e.addClause(sel, b, x.Not())
	return x
}

func (e *encoder) andN(lits []sat.Lit) sat.Lit {
	out := e.trueLit
	for _, l := range lits {
		out = e.and2(out, l)
	}
	return out
}

func (e *encoder) orN(lits []sat.Lit) sat.Lit {
	out := e.falseLit()
	for _, l := range lits {
		out = e.or2(out, l)
	}
	return out
}

// ---- word-level circuits ----

// constBits encodes an unsigned pattern into width literals.
func (e *encoder) constBits(pattern uint64, width int) []sat.Lit {
	bits := make([]sat.Lit, width)
	for i := range bits {
		if pattern&(1<<uint(i)) != 0 {
			bits[i] = e.trueLit
		} else {
			bits[i] = e.falseLit()
		}
	}
	return bits
}

// addBits is a ripple-carry adder with carry-in; the result wraps at the
// operand width.
func (e *encoder) addBits(a, b []sat.Lit, carryIn sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(a))
	c := carryIn
	for i := range a {
		axb := e.xor2(a[i], b[i])
		out[i] = e.xor2(axb, c)
		c = e.or2(e.and2(a[i], b[i]), e.and2(axb, c))
	}
	return out
}

func notAll(bits []sat.Lit) []sat.Lit {
	out := make([]sat.Lit, len(bits))
	for i, b := range bits {
		out[i] = b.Not()
	}
	return out
}

// subBits is a - b via a + ~b + 1.
func (e *encoder) subBits(a, b []sat.Lit) []sat.Lit {
	return e.addBits(a, notAll(b), e.trueLit)
}

// eqBits is bitwise equality (empty vectors are equal).
func (e *encoder) eqBits(a, b []sat.Lit) sat.Lit {
	eq := e.trueLit
	for i := range a {
		eq = e.and2(eq, e.xnor2(a[i], b[i]))
	}
	return eq
}

// cmpUnsigned returns (a > b, a >= b) for unsigned vectors.
func (e *encoder) cmpUnsigned(a, b []sat.Lit) (gt, ge sat.Lit) {
	gt = e.falseLit()
	eq := e.trueLit
	for i := len(a) - 1; i >= 0; i-- {
		gt = e.or2(gt, e.andN([]sat.Lit{eq, a[i], b[i].Not()}))
		eq = e.and2(eq, e.xnor2(a[i], b[i]))
	}
	return gt, e.or2(gt, eq)
}

// cmpSigned returns (a > b, a >= b) for two's-complement vectors, by
// flipping the sign bits and comparing unsigned.
func (e *encoder) cmpSigned(a, b []sat.Lit) (gt, ge sat.Lit) {
	fa := append([]sat.Lit(nil), a...)
	fb := append([]sat.Lit(nil), b...)
	fa[len(fa)-1] = fa[len(fa)-1].Not()
	fb[len(fb)-1] = fb[len(fb)-1].Not()
	return e.cmpUnsigned(fa, fb)
}

// popcount sums the set bits into an Int-width vector.
func (e *encoder) popcount(bits []sat.Lit) []sat.Lit {
	w := int(e.u.IntWidth())
	total := e.constBits(0, w)
	one := make([]sat.Lit, w)
	for _, b := range bits {
		for i := range one {
			one[i] = e.falseLit()
		}
		one[0] = b
		total = e.addBits(total, one, e.falseLit())
	}
	return total
}

// pidEq tests a PID vector against a constant PID.
func (e *encoder) pidEq(pbits []sat.Lit, pid int) sat.Lit {
	return e.eqBits(pbits, e.constBits(uint64(pid), len(pbits)))
}

// valueBits encodes a constant value.
func (e *encoder) valueBits(v expr.Value) ([]sat.Lit, error) {
	switch v.Type().Kind {
	case expr.KindBool:
		if v.Bool() {
			return []sat.Lit{e.trueLit}, nil
		}
		return []sat.Lit{e.falseLit()}, nil
	case expr.KindInt:
		w := int(e.u.IntWidth())
		mask := uint64(1)<<uint(w) - 1
		return e.constBits(uint64(v.Int())&mask, w), nil
	case expr.KindPID:
		if v.PID() < 0 || v.PID() >= e.u.NumCaches() {
			return nil, fmt.Errorf("smt: PID constant %s out of range for %d caches", v, e.u.NumCaches())
		}
		return e.constBits(uint64(v.PID()), bitsFor(e.u.NumCaches())), nil
	case expr.KindSet:
		if v.Set()&^e.u.SetMask() != 0 {
			return nil, fmt.Errorf("smt: set constant %s exceeds universe", v)
		}
		return e.constBits(v.Set(), e.u.NumCaches()), nil
	case expr.KindEnum:
		return e.constBits(uint64(v.EnumOrd()), bitsFor(len(v.Type().Enum.Values))), nil
	}
	return nil, fmt.Errorf("smt: cannot encode value %s", v)
}

// encode translates an expression to its bit vector, caching shared
// subtrees by node identity. A cache hit credits the node's first-encode
// clause count (newly encoded descendants included) to the reuse counter —
// a lower bound on the clauses a fresh encoder would have re-emitted.
func (e *encoder) encode(x expr.Expr) ([]sat.Lit, error) {
	if bits, ok := e.cache[x]; ok {
		e.reused += e.cost[x]
		return bits, nil
	}
	before := e.numClauses
	bits, err := e.encode1(x)
	if err != nil {
		return nil, err
	}
	e.cache[x] = bits
	e.cost[x] = e.numClauses - before
	return bits, nil
}

func (e *encoder) encode1(x expr.Expr) ([]sat.Lit, error) {
	switch n := x.(type) {
	case *expr.Var:
		ev, ok := e.vars[n.Name]
		if !ok {
			return nil, fmt.Errorf("smt: free variable %s not declared", n.Name)
		}
		if ev.t != n.VT {
			return nil, fmt.Errorf("smt: variable %s used at type %s, declared %s", n.Name, n.VT, ev.t)
		}
		return ev.bits, nil
	case *expr.Const:
		return e.valueBits(n.Val)
	case *expr.Apply:
		return e.encodeApply(n)
	}
	return nil, fmt.Errorf("smt: unknown expression node %T", x)
}

func (e *encoder) encodeApply(a *expr.Apply) ([]sat.Lit, error) {
	// Arity-0 symbols are constants of the universe: evaluate them once.
	if a.Fn.Arity() == 0 {
		return e.valueBits(a.Fn.Apply(e.u, nil))
	}
	args := make([][]sat.Lit, len(a.Args))
	for i, arg := range a.Args {
		bits, err := e.encode(arg)
		if err != nil {
			return nil, err
		}
		args[i] = bits
	}
	one := func(l sat.Lit) []sat.Lit { return []sat.Lit{l} }
	switch a.Fn.Name {
	case "add":
		return e.addBits(args[0], args[1], e.falseLit()), nil
	case "sub":
		return e.subBits(args[0], args[1]), nil
	case "inc":
		return e.addBits(args[0], e.constBits(1, len(args[0])), e.falseLit()), nil
	case "dec":
		return e.subBits(args[0], e.constBits(1, len(args[0]))), nil
	case "and":
		return one(e.and2(args[0][0], args[1][0])), nil
	case "or":
		return one(e.or2(args[0][0], args[1][0])), nil
	case "not":
		return one(args[0][0].Not()), nil
	case "iszero":
		return one(e.orN(args[0]).Not()), nil
	case "ge":
		_, ge := e.cmpSigned(args[0], args[1])
		return one(ge), nil
	case "gt":
		gt, _ := e.cmpSigned(args[0], args[1])
		return one(gt), nil
	case "equals":
		return one(e.eqBits(args[0], args[1])), nil
	case "ite":
		sel := args[0][0]
		out := make([]sat.Lit, len(args[1]))
		for i := range out {
			out[i] = e.mux(sel, args[1][i], args[2][i])
		}
		return out, nil
	case "setunion":
		out := make([]sat.Lit, len(args[0]))
		for i := range out {
			out[i] = e.or2(args[0][i], args[1][i])
		}
		return out, nil
	case "setinter":
		out := make([]sat.Lit, len(args[0]))
		for i := range out {
			out[i] = e.and2(args[0][i], args[1][i])
		}
		return out, nil
	case "setminus":
		out := make([]sat.Lit, len(args[0]))
		for i := range out {
			out[i] = e.and2(args[0][i], args[1][i].Not())
		}
		return out, nil
	case "setof":
		out := make([]sat.Lit, e.u.NumCaches())
		for i := range out {
			out[i] = e.pidEq(args[0], i)
		}
		return out, nil
	case "setadd":
		out := make([]sat.Lit, len(args[0]))
		for i := range out {
			out[i] = e.or2(args[0][i], e.pidEq(args[1], i))
		}
		return out, nil
	case "setcontains":
		hit := e.falseLit()
		for i, sbit := range args[0] {
			hit = e.or2(hit, e.and2(sbit, e.pidEq(args[1], i)))
		}
		return one(hit), nil
	case "setsize":
		return e.popcount(args[0]), nil
	}
	return nil, fmt.Errorf("smt: function %s is outside the encodable fragment", a.Fn.Name)
}

// valuePattern is patternValue's inverse: the little-endian bit pattern a
// typed value occupies in its variable's bit vector. The second result is
// false for values whose kind does not match the target type (such hints
// are ignored rather than mis-applied).
func (e *encoder) valuePattern(t expr.Type, v expr.Value) (uint64, bool) {
	if v.Type().Kind != t.Kind {
		return 0, false
	}
	switch t.Kind {
	case expr.KindBool:
		if v.Bool() {
			return 1, true
		}
		return 0, true
	case expr.KindInt:
		w := e.u.IntWidth()
		mask := uint64(1)<<w - 1
		return uint64(v.Int()) & mask, true
	case expr.KindPID:
		return uint64(v.PID()), true
	case expr.KindSet:
		return v.Set(), true
	case expr.KindEnum:
		return uint64(v.EnumOrd()), true
	}
	return 0, false
}

// patternValue turns a little-endian bit pattern into a typed value.
func (e *encoder) patternValue(t expr.Type, pattern uint64) expr.Value {
	switch t.Kind {
	case expr.KindBool:
		return expr.BoolVal(pattern != 0)
	case expr.KindInt:
		w := e.u.IntWidth()
		val := int64(pattern)
		if pattern&(1<<(w-1)) != 0 {
			val -= int64(1) << w
		}
		return expr.IntVal(e.u, val)
	case expr.KindPID:
		return expr.PIDVal(int(pattern))
	case expr.KindSet:
		return expr.SetVal(pattern)
	case expr.KindEnum:
		return expr.EnumVal(t.Enum, int(pattern))
	}
	panic("smt: patternValue on invalid type")
}
