package smt

import (
	"math/rand"
	"testing"

	"transit/internal/expr"
)

func TestSolveTrivial(t *testing.T) {
	u := expr.NewUniverse(2)
	res, err := Solve(u, nil, expr.True())
	if err != nil || res.Status != Sat {
		t.Fatalf("true: %v %v", res.Status, err)
	}
	res, err = Solve(u, nil, expr.False())
	if err != nil || res.Status != Unsat {
		t.Fatalf("false: %v %v", res.Status, err)
	}
}

func TestSolveModelSatisfiesFormula(t *testing.T) {
	u := expr.NewUniverse(3)
	a := expr.V("a", expr.IntType)
	b := expr.V("b", expr.IntType)
	s := expr.V("s", expr.SetType)
	p := expr.V("p", expr.PIDType)
	f := expr.And(
		expr.Gt(a, b),
		expr.Eq(expr.Add(a, b), expr.IntC(u, 10)),
		expr.SetContains(s, p),
		expr.Eq(expr.Card(s), expr.IntC(u, 2)),
	)
	vars := []*expr.Var{a, b, s, p}
	res, err := Solve(u, vars, f)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Sat {
		t.Fatalf("status %v", res.Status)
	}
	if !f.Eval(u, res.Model).Bool() {
		t.Fatalf("model %v does not satisfy formula", res.Model)
	}
}

func TestSolveUnsatArithmetic(t *testing.T) {
	u := expr.NewUniverse(2)
	a := expr.V("a", expr.IntType)
	// a > a is unsat.
	res, err := Solve(u, []*expr.Var{a}, expr.Gt(a, a))
	if err != nil || res.Status != Unsat {
		t.Fatalf("a>a: %v %v", res.Status, err)
	}
	// a + 1 = a is unsat under wrapping too (adds exactly 1 mod 2^W).
	res, err = Solve(u, []*expr.Var{a}, expr.Eq(expr.Inc(a), a))
	if err != nil || res.Status != Unsat {
		t.Fatalf("a+1=a: %v %v", res.Status, err)
	}
}

func TestWrappingAgreesWithEvaluator(t *testing.T) {
	u := expr.NewUniverse(2)
	a := expr.V("a", expr.IntType)
	// inc(127) = -128 under 8-bit wrapping; the SMT encoding must agree.
	f := expr.And(
		expr.Eq(a, expr.IntC(u, 127)),
		expr.Eq(expr.Inc(a), expr.IntC(u, -128)),
	)
	res, err := Solve(u, []*expr.Var{a}, f)
	if err != nil || res.Status != Sat {
		t.Fatalf("wrap: %v %v", res.Status, err)
	}
}

func TestPIDDomainConstraint(t *testing.T) {
	u := expr.NewUniverse(3) // PIDs 0..2 in 2 bits; pattern 3 must be blocked
	p := expr.V("p", expr.PIDType)
	f := expr.And(
		expr.Neq(p, expr.PIDC(0)),
		expr.Neq(p, expr.PIDC(1)),
		expr.Neq(p, expr.PIDC(2)),
	)
	res, err := Solve(u, []*expr.Var{p}, f)
	if err != nil || res.Status != Unsat {
		t.Fatalf("PID exhaustion should be unsat: %v %v", res.Status, err)
	}
}

func TestEnumDomainConstraint(t *testing.T) {
	u := expr.NewUniverse(2)
	e := u.MustDeclareEnum("MT", "A", "B", "C") // 2 bits, pattern 3 blocked
	m := expr.V("m", expr.EnumOf(e))
	f := expr.And(
		expr.Neq(m, expr.EnumC(e, "A")),
		expr.Neq(m, expr.EnumC(e, "B")),
		expr.Neq(m, expr.EnumC(e, "C")),
	)
	res, err := Solve(u, []*expr.Var{m}, f)
	if err != nil || res.Status != Unsat {
		t.Fatalf("enum exhaustion should be unsat: %v %v", res.Status, err)
	}
}

func TestSetOperations(t *testing.T) {
	u := expr.NewUniverse(4)
	s := expr.V("s", expr.SetType)
	r := expr.V("r", expr.SetType)
	vars := []*expr.Var{s, r}
	// s ∪ r = {0,1,2} ∧ s ∩ r = {1} ∧ s \ r = {0}
	f := expr.And(
		expr.Eq(expr.SetUnion(s, r), expr.SetC(0, 1, 2)),
		expr.Eq(expr.SetInter(s, r), expr.SetC(1)),
		expr.Eq(expr.SetMinus(s, r), expr.SetC(0)),
	)
	res, err := Solve(u, vars, f)
	if err != nil || res.Status != Sat {
		t.Fatalf("set ops: %v %v", res.Status, err)
	}
	if res.Model["s"].Set() != 0b0011 || res.Model["r"].Set() != 0b0110 {
		t.Errorf("model s=%v r=%v", res.Model["s"], res.Model["r"])
	}
}

func TestSetofAndContains(t *testing.T) {
	u := expr.NewUniverse(4)
	p := expr.V("p", expr.PIDType)
	// setcontains(setof(p), q) forces q = p.
	q := expr.V("q", expr.PIDType)
	f := expr.And(
		expr.SetContains(expr.Singleton(p), q),
		expr.Neq(p, q),
	)
	res, err := Solve(u, []*expr.Var{p, q}, f)
	if err != nil || res.Status != Unsat {
		t.Fatalf("singleton membership: %v %v", res.Status, err)
	}
}

func TestValid(t *testing.T) {
	u := expr.NewUniverse(3)
	s := expr.V("s", expr.SetType)
	p := expr.V("p", expr.PIDType)
	vars := []*expr.Var{s, p}
	// Valid: p ∈ s ∪ {p}.
	ok, _, err := Valid(u, vars, expr.SetContains(expr.SetAdd(s, p), p))
	if err != nil || !ok {
		t.Fatalf("valid formula rejected: %v %v", ok, err)
	}
	// Invalid: p ∈ s; counterexample must falsify.
	ok, cex, err := Valid(u, vars, expr.SetContains(s, p))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("invalid formula accepted")
	}
	if expr.SetContains(s, p).Eval(u, cex).Bool() {
		t.Fatalf("counterexample %v does not falsify", cex)
	}
}

func TestNumcachesConstant(t *testing.T) {
	u := expr.NewUniverse(5)
	a := expr.V("a", expr.IntType)
	f := expr.Eq(a, expr.NumCaches())
	res, err := Solve(u, []*expr.Var{a}, f)
	if err != nil || res.Status != Sat {
		t.Fatalf("numcaches: %v %v", res.Status, err)
	}
	if res.Model["a"].Int() != 5 {
		t.Errorf("a = %d, want 5", res.Model["a"].Int())
	}
}

func TestErrors(t *testing.T) {
	u := expr.NewUniverse(2)
	a := expr.V("a", expr.IntType)
	if _, err := Solve(u, nil, a); err == nil {
		t.Error("non-Bool formula should error")
	}
	if _, err := Solve(u, nil, expr.Gt(a, a)); err == nil {
		t.Error("free variable should error")
	}
	if _, err := Solve(u, []*expr.Var{a, a}, expr.Gt(a, a)); err == nil {
		t.Error("duplicate variable should error")
	}
	// PID constant out of range for the universe.
	p := expr.V("p", expr.PIDType)
	if _, err := Solve(u, []*expr.Var{p}, expr.Eq(p, expr.PIDC(7))); err == nil {
		t.Error("out-of-range PID constant should error")
	}
}

func TestUnknownFunctionRejected(t *testing.T) {
	u := expr.NewUniverse(2)
	odd := &expr.Func{Name: "odd", Params: []expr.Type{expr.IntType}, Ret: expr.BoolType,
		Apply: func(u *expr.Universe, a []expr.Value) expr.Value { return expr.BoolVal(a[0].Int()%2 != 0) }}
	a := expr.V("a", expr.IntType)
	if _, err := Solve(u, []*expr.Var{a}, expr.NewApply(odd, a)); err == nil {
		t.Error("unencodable function should error")
	}
}

func TestSingleCacheUniverse(t *testing.T) {
	// numCaches == 1: PID needs zero bits; everything must still work.
	u := expr.NewUniverse(1)
	p := expr.V("p", expr.PIDType)
	q := expr.V("q", expr.PIDType)
	ok, _, err := Valid(u, []*expr.Var{p, q}, expr.Eq(p, q))
	if err != nil || !ok {
		t.Fatalf("all PIDs equal in 1-cache universe: %v %v", ok, err)
	}
}

// Cross-validation: random formulas, bit-blasting vs. brute force.
func TestRandomFormulasAgainstBruteForce(t *testing.T) {
	u, err := expr.NewUniverseWidth(3, 4) // small domains keep brute force fast
	if err != nil {
		t.Fatal(err)
	}
	mt := u.MustDeclareEnum("MT", "GetS", "GetM", "Put")
	voc := expr.CoherenceVocabulary(u, expr.CoherenceOptions{
		Enums:             []*expr.EnumType{mt},
		WithEnumConstants: true,
	})
	vars := []*expr.Var{
		expr.V("a", expr.IntType),
		expr.V("s", expr.SetType),
		expr.V("p", expr.PIDType),
		expr.V("m", expr.EnumOf(mt)),
	}
	rng := rand.New(rand.NewSource(2024))
	agree := 0
	for trial := 0; trial < 120; trial++ {
		size := 3 + rng.Intn(9)
		f, err := expr.RandomExpr(u, rng, voc, vars, expr.BoolType, size)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Solve(u, vars, f)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, f, err)
		}
		want, err := SolveBrute(u, vars, f, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != want.Status {
			t.Fatalf("trial %d: smt=%v brute=%v for %s", trial, got.Status, want.Status, f)
		}
		if got.Status == Sat {
			if !f.Eval(u, got.Model).Bool() {
				t.Fatalf("trial %d: model does not satisfy %s", trial, f)
			}
		}
		agree++
	}
	if agree != 120 {
		t.Fatalf("only %d trials ran", agree)
	}
}

// Cross-validation on equalities between two random terms of the same type,
// which stresses the word-level circuits harder than random Bool trees.
func TestRandomEqualitiesAgainstBruteForce(t *testing.T) {
	u, err := expr.NewUniverseWidth(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	voc := expr.CoherenceVocabulary(u, expr.CoherenceOptions{})
	vars := []*expr.Var{
		expr.V("a", expr.IntType),
		expr.V("b", expr.IntType),
		expr.V("s", expr.SetType),
		expr.V("r", expr.SetType),
		expr.V("p", expr.PIDType),
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 120; trial++ {
		typ := []expr.Type{expr.IntType, expr.SetType}[rng.Intn(2)]
		lhs, err := expr.RandomExpr(u, rng, voc, vars, typ, 2+rng.Intn(7))
		if err != nil {
			t.Fatal(err)
		}
		rhs, err := expr.RandomExpr(u, rng, voc, vars, typ, 2+rng.Intn(7))
		if err != nil {
			t.Fatal(err)
		}
		f := expr.Eq(lhs, rhs)
		got, err := Solve(u, vars, f)
		if err != nil {
			t.Fatal(err)
		}
		want, err := SolveBrute(u, vars, f, 1<<21)
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != want.Status {
			t.Fatalf("trial %d: smt=%v brute=%v for %s", trial, got.Status, want.Status, f)
		}
		if got.Status == Sat && !f.Eval(u, got.Model).Bool() {
			t.Fatalf("trial %d: bad model for %s", trial, f)
		}
	}
}

func TestSolveStatsReported(t *testing.T) {
	u := expr.NewUniverse(4)
	a := expr.V("a", expr.IntType)
	b := expr.V("b", expr.IntType)
	_, stats, err := SolveStats(u, []*expr.Var{a, b},
		expr.Eq(expr.Add(a, b), expr.IntC(u, 42)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SATVars == 0 || stats.Clauses == 0 {
		t.Errorf("stats empty: %+v", stats)
	}
}

func TestSolveBruteLimit(t *testing.T) {
	u := expr.NewUniverse(8)
	vars := []*expr.Var{
		expr.V("a", expr.IntType), expr.V("b", expr.IntType),
		expr.V("c", expr.IntType), expr.V("d", expr.IntType),
	}
	f := expr.Eq(vars[0], vars[1])
	if _, err := SolveBrute(u, vars, f, 1000); err == nil {
		t.Error("expected domain-size error")
	}
}
