// Package smt implements a finite-domain SMT solver for the TRANSIT
// expression theory by bit-blasting to CNF and deciding with the CDCL
// solver in internal/sat.
//
// The paper dispatches its consistency queries ("is ¬C[o := e]
// satisfiable?") to Z3. All TRANSIT types are finite in a given Universe —
// Bool, W-bit Int, PID in [0, numcaches), Set ⊆ PIDs, finite Enums — so the
// same queries are decidable by propositional encoding: every theory
// variable becomes a vector of SAT variables, every Table 1 operation
// becomes a circuit (ripple-carry adders, comparators, popcount, one-hot
// decoders, muxes), and the formula is asserted through Tseitin
// transformation. Models decode back to typed values.
//
// A brute-force reference solver (SolveBrute) enumerates the value domains
// directly; tests cross-validate the two on random formulas.
package smt

import (
	"context"
	"fmt"
	"sort"

	"transit/internal/expr"
	"transit/internal/sat"
)

// Status mirrors the SAT solver verdicts.
type Status = sat.Status

// Re-exported verdicts.
const (
	Unknown = sat.Unknown
	Sat     = sat.Sat
	Unsat   = sat.Unsat
)

// Result is the outcome of a satisfiability check. Model is non-nil only
// when Status == Sat and assigns a value to every declared variable.
type Result struct {
	Status Status
	Model  expr.Env
}

// Options tunes a query.
type Options struct {
	// MaxConflicts bounds the SAT search; 0 means unlimited. Exhausting it
	// yields Status Unknown.
	MaxConflicts int64
	// Hint biases the canonical model toward the given values: for each
	// hinted variable every bit's preferred polarity is the hint's bit, so
	// the query returns the satisfying assignment closest to the hint
	// (unhinted variables keep the default least-value preference). The
	// model stays a pure function of (formula, hint) — identical for
	// one-shot and incremental solving — which is what lets CEGIS
	// concretize "near the current candidate" without breaking answer
	// parity. Hints never affect satisfiability, only model choice.
	Hint expr.Env
}

// Stats reports encoding and solving work for one query. On a fresh
// (one-shot) query the session deltas coincide with the totals; on a
// reused incremental session, Clauses/Conflicts/Decisions/Propagated and
// the extras below are charged per query.
type Stats struct {
	SATVars    int   // total SAT variables in the (possibly shared) solver
	Clauses    int64 // clauses newly encoded by this query
	Conflicts  int64
	Decisions  int64
	Propagated int64

	// Incremental-session extras.
	NewVars          int   // SAT variables created by this query
	ClausesReused    int64 // cached-circuit clauses reused instead of re-encoded
	AssumptionSolves int64 // SAT calls under assumptions (incl. canonicalization probes)
	LearnedKept      int64 // learned clauses retained from earlier queries
}

// Solve checks satisfiability of a Boolean formula over the given typed
// variables in the universe. Every free variable of the formula must appear
// in vars (vars may include unused variables; they receive arbitrary model
// values).
func Solve(u *expr.Universe, vars []*expr.Var, formula expr.Expr) (Result, error) {
	return SolveOpt(u, vars, formula, Options{})
}

// SolveOpt is Solve with options.
func SolveOpt(u *expr.Universe, vars []*expr.Var, formula expr.Expr, opts Options) (Result, error) {
	r, _, err := SolveStats(u, vars, formula, opts)
	return r, err
}

// SolveOptCtx is SolveOpt under a context: the SAT search polls the
// context and the call fails with the context's error once it is
// cancelled or its deadline passes.
func SolveOptCtx(ctx context.Context, u *expr.Universe, vars []*expr.Var, formula expr.Expr, opts Options) (Result, error) {
	r, _, err := SolveStatsCtx(ctx, u, vars, formula, opts)
	return r, err
}

// SolveStats is SolveOpt, additionally reporting work statistics.
func SolveStats(u *expr.Universe, vars []*expr.Var, formula expr.Expr, opts Options) (Result, Stats, error) {
	return SolveStatsCtx(context.Background(), u, vars, formula, opts)
}

// SolveStatsCtx is SolveStats under a context (see SolveOptCtx). One
// "smt.solve" span brackets the query, with an "smt.encode" child for
// bit-blasting and a "sat.search" child for the CDCL run; the metrics
// registry on the context (when present) accumulates query and search
// counters. Each call runs in a fresh one-query Session, so it returns the
// same canonical model an incremental session would.
func SolveStatsCtx(ctx context.Context, u *expr.Universe, vars []*expr.Var, formula expr.Expr, opts Options) (Result, Stats, error) {
	sess, err := newSession(u, vars, false)
	if err != nil {
		return Result{}, Stats{}, err
	}
	return sess.SolveStats(ctx, formula, opts)
}

// statusName renders a verdict for span attributes.
func statusName(s Status) string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// Valid reports whether the formula holds for all variable valuations: it
// checks that the negation is unsatisfiable. When the formula is not valid,
// the returned counterexample model falsifies it.
func Valid(u *expr.Universe, vars []*expr.Var, formula expr.Expr) (bool, expr.Env, error) {
	return ValidOpt(u, vars, formula, Options{})
}

// ValidOpt is Valid with options. Status Unknown from the underlying solver
// is reported as an error, since neither verdict is established.
func ValidOpt(u *expr.Universe, vars []*expr.Var, formula expr.Expr, opts Options) (bool, expr.Env, error) {
	return ValidOptCtx(context.Background(), u, vars, formula, opts)
}

// ValidOptCtx is ValidOpt under a context (see SolveOptCtx).
func ValidOptCtx(ctx context.Context, u *expr.Universe, vars []*expr.Var, formula expr.Expr, opts Options) (bool, expr.Env, error) {
	res, err := SolveOptCtx(ctx, u, vars, expr.Not(formula), opts)
	if err != nil {
		return false, nil, err
	}
	switch res.Status {
	case Unsat:
		return true, nil, nil
	case Sat:
		return false, res.Model, nil
	default:
		return false, nil, fmt.Errorf("smt: validity check exhausted conflict budget")
	}
}

// SolveBrute is a reference satisfiability procedure that enumerates the
// full product of variable domains. It errors when the product exceeds
// maxAssignments. It exists to cross-validate the bit-blasting encoder.
func SolveBrute(u *expr.Universe, vars []*expr.Var, formula expr.Expr, maxAssignments uint64) (Result, error) {
	if formula.Type() != expr.BoolType {
		return Result{}, fmt.Errorf("smt: formula has type %s, want Bool", formula.Type())
	}
	// Deterministic order.
	sorted := append([]*expr.Var(nil), vars...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	total := uint64(1)
	domains := make([][]expr.Value, len(sorted))
	for i, v := range sorted {
		domains[i] = expr.ValuesOf(u, v.VT)
		total *= uint64(len(domains[i]))
		if total > maxAssignments {
			return Result{}, fmt.Errorf("smt: brute-force domain product exceeds %d", maxAssignments)
		}
	}
	idx := make([]int, len(sorted))
	env := make(expr.Env, len(sorted))
	for {
		for i, v := range sorted {
			env[v.Name] = domains[i][idx[i]]
		}
		if formula.Eval(u, env).Bool() {
			return Result{Status: Sat, Model: env.Clone()}, nil
		}
		// Next assignment (odometer).
		i := 0
		for ; i < len(idx); i++ {
			idx[i]++
			if idx[i] < len(domains[i]) {
				break
			}
			idx[i] = 0
		}
		if i == len(idx) {
			return Result{Status: Unsat}, nil
		}
	}
}
