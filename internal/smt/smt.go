// Package smt implements a finite-domain SMT solver for the TRANSIT
// expression theory by bit-blasting to CNF and deciding with the CDCL
// solver in internal/sat.
//
// The paper dispatches its consistency queries ("is ¬C[o := e]
// satisfiable?") to Z3. All TRANSIT types are finite in a given Universe —
// Bool, W-bit Int, PID in [0, numcaches), Set ⊆ PIDs, finite Enums — so the
// same queries are decidable by propositional encoding: every theory
// variable becomes a vector of SAT variables, every Table 1 operation
// becomes a circuit (ripple-carry adders, comparators, popcount, one-hot
// decoders, muxes), and the formula is asserted through Tseitin
// transformation. Models decode back to typed values.
//
// A brute-force reference solver (SolveBrute) enumerates the value domains
// directly; tests cross-validate the two on random formulas.
package smt

import (
	"context"
	"fmt"
	"sort"
	"time"

	"transit/internal/expr"
	"transit/internal/obs"
	"transit/internal/sat"
)

// Status mirrors the SAT solver verdicts.
type Status = sat.Status

// Re-exported verdicts.
const (
	Unknown = sat.Unknown
	Sat     = sat.Sat
	Unsat   = sat.Unsat
)

// Result is the outcome of a satisfiability check. Model is non-nil only
// when Status == Sat and assigns a value to every declared variable.
type Result struct {
	Status Status
	Model  expr.Env
}

// Options tunes a query.
type Options struct {
	// MaxConflicts bounds the SAT search; 0 means unlimited. Exhausting it
	// yields Status Unknown.
	MaxConflicts int64
}

// Stats reports encoding and solving work for one query.
type Stats struct {
	SATVars    int
	Clauses    int64
	Conflicts  int64
	Decisions  int64
	Propagated int64
}

// Solve checks satisfiability of a Boolean formula over the given typed
// variables in the universe. Every free variable of the formula must appear
// in vars (vars may include unused variables; they receive arbitrary model
// values).
func Solve(u *expr.Universe, vars []*expr.Var, formula expr.Expr) (Result, error) {
	return SolveOpt(u, vars, formula, Options{})
}

// SolveOpt is Solve with options.
func SolveOpt(u *expr.Universe, vars []*expr.Var, formula expr.Expr, opts Options) (Result, error) {
	r, _, err := SolveStats(u, vars, formula, opts)
	return r, err
}

// SolveOptCtx is SolveOpt under a context: the SAT search polls the
// context and the call fails with the context's error once it is
// cancelled or its deadline passes.
func SolveOptCtx(ctx context.Context, u *expr.Universe, vars []*expr.Var, formula expr.Expr, opts Options) (Result, error) {
	r, _, err := SolveStatsCtx(ctx, u, vars, formula, opts)
	return r, err
}

// SolveStats is SolveOpt, additionally reporting work statistics.
func SolveStats(u *expr.Universe, vars []*expr.Var, formula expr.Expr, opts Options) (Result, Stats, error) {
	return SolveStatsCtx(context.Background(), u, vars, formula, opts)
}

// SolveStatsCtx is SolveStats under a context (see SolveOptCtx). One
// "smt.solve" span brackets the query, with an "smt.encode" child for
// bit-blasting and a "sat.search" child for the CDCL run; the metrics
// registry on the context (when present) accumulates query and search
// counters.
func SolveStatsCtx(ctx context.Context, u *expr.Universe, vars []*expr.Var, formula expr.Expr, opts Options) (res Result, stats Stats, err error) {
	ctx, span := obs.Start(ctx, "smt.solve", obs.Int("vars", len(vars)))
	start := time.Now()
	defer func() {
		span.SetAttr(obs.Str("status", statusName(res.Status)),
			obs.Int("sat_vars", stats.SATVars),
			obs.Int64("clauses", stats.Clauses),
			obs.Int64("conflicts", stats.Conflicts),
			obs.Int64("decisions", stats.Decisions),
			obs.Int64("propagations", stats.Propagated))
		if err != nil {
			span.SetAttr(obs.Str("error", err.Error()))
		}
		span.End()
		if reg := obs.MetricsFrom(ctx); reg != nil {
			reg.Counter("smt.queries").Inc()
			switch res.Status {
			case Sat:
				reg.Counter("smt.sat").Inc()
			case Unsat:
				reg.Counter("smt.unsat").Inc()
			default:
				reg.Counter("smt.unknown").Inc()
			}
			reg.Counter("smt.sat_vars").Add(int64(stats.SATVars))
			reg.Counter("smt.clauses").Add(stats.Clauses)
			reg.Counter("sat.conflicts").Add(stats.Conflicts)
			reg.Counter("sat.decisions").Add(stats.Decisions)
			reg.Counter("sat.propagations").Add(stats.Propagated)
			reg.Histogram("smt.solve_ms").Observe(time.Since(start))
		}
	}()
	return solveStats(ctx, u, vars, formula, opts)
}

// statusName renders a verdict for span attributes.
func statusName(s Status) string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// solveStats is the body of SolveStatsCtx, separated so the tracing
// wrapper can record outcome attributes on every return path.
func solveStats(ctx context.Context, u *expr.Universe, vars []*expr.Var, formula expr.Expr, opts Options) (Result, Stats, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, Stats{}, fmt.Errorf("smt: %w", err)
	}
	if formula.Type() != expr.BoolType {
		return Result{}, Stats{}, fmt.Errorf("smt: formula has type %s, want Bool", formula.Type())
	}
	_, encSpan := obs.Start(ctx, "smt.encode")
	enc, err := newEncoder(u, vars)
	if err != nil {
		encSpan.End()
		return Result{}, Stats{}, err
	}
	root, err := enc.encode(formula)
	if err != nil {
		encSpan.End()
		return Result{}, Stats{}, err
	}
	enc.s.AddClause(root[0])
	encSpan.SetAttr(obs.Int("sat_vars", enc.s.NumVars()), obs.Int64("clauses", enc.numClauses))
	encSpan.End()

	enc.s.MaxConflicts = opts.MaxConflicts
	enc.s.Interrupt = ctx.Done()
	_, satSpan := obs.Start(ctx, "sat.search",
		obs.Int("sat_vars", enc.s.NumVars()), obs.Int64("clauses", enc.numClauses))
	st := enc.s.Solve()
	satSpan.SetAttr(obs.Str("status", statusName(st)),
		obs.Int64("conflicts", enc.s.Stats.Conflicts),
		obs.Int64("decisions", enc.s.Stats.Decisions),
		obs.Int64("propagations", enc.s.Stats.Propagations))
	satSpan.End()
	if st == sat.Unknown && ctx.Err() != nil {
		return Result{}, Stats{}, fmt.Errorf("smt: %w", ctx.Err())
	}
	stats := Stats{
		SATVars:    enc.s.NumVars(),
		Clauses:    enc.numClauses,
		Conflicts:  enc.s.Stats.Conflicts,
		Decisions:  enc.s.Stats.Decisions,
		Propagated: enc.s.Stats.Propagations,
	}
	res := Result{Status: st}
	if st == Sat {
		res.Model = enc.decodeModel()
	}
	return res, stats, nil
}

// Valid reports whether the formula holds for all variable valuations: it
// checks that the negation is unsatisfiable. When the formula is not valid,
// the returned counterexample model falsifies it.
func Valid(u *expr.Universe, vars []*expr.Var, formula expr.Expr) (bool, expr.Env, error) {
	return ValidOpt(u, vars, formula, Options{})
}

// ValidOpt is Valid with options. Status Unknown from the underlying solver
// is reported as an error, since neither verdict is established.
func ValidOpt(u *expr.Universe, vars []*expr.Var, formula expr.Expr, opts Options) (bool, expr.Env, error) {
	return ValidOptCtx(context.Background(), u, vars, formula, opts)
}

// ValidOptCtx is ValidOpt under a context (see SolveOptCtx).
func ValidOptCtx(ctx context.Context, u *expr.Universe, vars []*expr.Var, formula expr.Expr, opts Options) (bool, expr.Env, error) {
	res, err := SolveOptCtx(ctx, u, vars, expr.Not(formula), opts)
	if err != nil {
		return false, nil, err
	}
	switch res.Status {
	case Unsat:
		return true, nil, nil
	case Sat:
		return false, res.Model, nil
	default:
		return false, nil, fmt.Errorf("smt: validity check exhausted conflict budget")
	}
}

// SolveBrute is a reference satisfiability procedure that enumerates the
// full product of variable domains. It errors when the product exceeds
// maxAssignments. It exists to cross-validate the bit-blasting encoder.
func SolveBrute(u *expr.Universe, vars []*expr.Var, formula expr.Expr, maxAssignments uint64) (Result, error) {
	if formula.Type() != expr.BoolType {
		return Result{}, fmt.Errorf("smt: formula has type %s, want Bool", formula.Type())
	}
	// Deterministic order.
	sorted := append([]*expr.Var(nil), vars...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	total := uint64(1)
	domains := make([][]expr.Value, len(sorted))
	for i, v := range sorted {
		domains[i] = expr.ValuesOf(u, v.VT)
		total *= uint64(len(domains[i]))
		if total > maxAssignments {
			return Result{}, fmt.Errorf("smt: brute-force domain product exceeds %d", maxAssignments)
		}
	}
	idx := make([]int, len(sorted))
	env := make(expr.Env, len(sorted))
	for {
		for i, v := range sorted {
			env[v.Name] = domains[i][idx[i]]
		}
		if formula.Eval(u, env).Bool() {
			return Result{Status: Sat, Model: env.Clone()}, nil
		}
		// Next assignment (odometer).
		i := 0
		for ; i < len(idx); i++ {
			idx[i]++
			if idx[i] < len(domains[i]) {
				break
			}
			idx[i] = 0
		}
		if i == len(idx) {
			return Result{Status: Unsat}, nil
		}
	}
}
