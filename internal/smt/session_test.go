package smt

import (
	"context"
	"math/rand"
	"testing"

	"transit/internal/expr"
)

func sameEnv(a, b expr.Env) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestSessionDifferentialFuzz is the smt-level differential fuzz: random
// finite-domain formulas solved (a) one-shot, (b) through one reused
// incremental session, and (c) by the brute-force reference must agree on
// status and — because all three return the canonical model — on the model
// itself, literally.
func TestSessionDifferentialFuzz(t *testing.T) {
	u := expr.NewUniverse(3)
	voc := expr.CoherenceVocabulary(u, expr.CoherenceOptions{})
	vars := []*expr.Var{
		expr.V("a", expr.IntType),
		expr.V("b", expr.IntType),
		expr.V("s", expr.SetType),
		expr.V("p", expr.PIDType),
	}
	rng := rand.New(rand.NewSource(20130617)) // seed-pinned for CI
	sess, err := NewSession(u, vars)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for trial := 0; trial < 80; trial++ {
		size := 3 + rng.Intn(8)
		f, err := expr.RandomExpr(u, rng, voc, vars, expr.BoolType, size)
		if err != nil {
			t.Fatal(err)
		}
		one, err := Solve(u, vars, f)
		if err != nil {
			t.Fatalf("trial %d (%s): one-shot: %v", trial, f, err)
		}
		inc, err := sess.Solve(ctx, f, Options{})
		if err != nil {
			t.Fatalf("trial %d (%s): session: %v", trial, f, err)
		}
		brute, err := SolveBrute(u, vars, f, 1<<22)
		if err != nil {
			t.Fatal(err)
		}
		if one.Status != inc.Status || one.Status != brute.Status {
			t.Fatalf("trial %d: one-shot=%v session=%v brute=%v for %s",
				trial, one.Status, inc.Status, brute.Status, f)
		}
		if one.Status == Sat {
			if !f.Eval(u, inc.Model).Bool() {
				t.Fatalf("trial %d: session model does not satisfy %s", trial, f)
			}
			if !sameEnv(one.Model, inc.Model) {
				t.Fatalf("trial %d: one-shot model %v != session model %v for %s",
					trial, one.Model, inc.Model, f)
			}
			if !sameEnv(brute.Model, inc.Model) {
				t.Fatalf("trial %d: brute model %v != session model %v for %s",
					trial, brute.Model, inc.Model, f)
			}
		}
	}
	if st := sess.Stats(); st.Queries != 80 {
		t.Errorf("session queries = %d, want 80", st.Queries)
	}
}

// TestSessionAssertRetract exercises the activation-literal lifecycle at
// the Session level, mirrored against a BruteSession running the same
// script of assert/solve/retract operations.
func TestSessionAssertRetract(t *testing.T) {
	u := expr.NewUniverse(2)
	a := expr.V("a", expr.IntType)
	b := expr.V("b", expr.IntType)
	vars := []*expr.Var{a, b}
	sess, err := NewSession(u, vars)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewBruteSession(u, vars, 1<<20)
	ctx := context.Background()

	gtA := expr.Gt(a, b)
	gtB := expr.Gt(b, a)
	eq := expr.Eq(a, b)

	sGt, _ := sess.Assert(gtA)
	sLt, _ := sess.Assert(gtB)
	sEq, _ := sess.Assert(eq)
	rGt := ref.Assert(gtA)
	rLt := ref.Assert(gtB)
	rEq := ref.Assert(eq)

	check := func(label string, su []*Assertion, ru []*BruteAssertion) {
		t.Helper()
		got, _, err := sess.SolveAssuming(ctx, su, nil, Options{})
		if err != nil {
			t.Fatalf("%s: session: %v", label, err)
		}
		want, err := ref.SolveAssuming(ru, nil)
		if err != nil {
			t.Fatalf("%s: brute: %v", label, err)
		}
		if got.Status != want.Status {
			t.Fatalf("%s: session=%v brute=%v", label, got.Status, want.Status)
		}
		if got.Status == Sat && !sameEnv(got.Model, want.Model) {
			t.Fatalf("%s: session model %v != brute model %v", label, got.Model, want.Model)
		}
	}

	check("a>b", []*Assertion{sGt}, []*BruteAssertion{rGt})
	check("b>a", []*Assertion{sLt}, []*BruteAssertion{rLt})
	check("a>b ∧ b>a", []*Assertion{sGt, sLt}, []*BruteAssertion{rGt, rLt})
	check("a=b", []*Assertion{sEq}, []*BruteAssertion{rEq})
	check("a>b ∧ a=b", []*Assertion{sGt, sEq}, []*BruteAssertion{rGt, rEq})

	// Retraction: the constraint disappears; reusing the handle errors.
	sess.Retract(sGt)
	ref.Retract(rGt)
	check("after retract: b>a", []*Assertion{sLt}, []*BruteAssertion{rLt})
	if _, _, err := sess.SolveAssuming(ctx, []*Assertion{sGt}, nil, Options{}); err == nil {
		t.Fatal("solving under a retracted assertion must error")
	}
	// Double retract is a no-op.
	sess.Retract(sGt)
	check("still: a=b", []*Assertion{sEq}, []*BruteAssertion{rEq})
}

// TestSessionReuseSavesEncoding asserts the point of the refactor: solving
// the same formula twice in one session encodes it once.
func TestSessionReuseSavesEncoding(t *testing.T) {
	u := expr.NewUniverse(3)
	a := expr.V("a", expr.IntType)
	b := expr.V("b", expr.IntType)
	sess, err := NewSession(u, []*expr.Var{a, b})
	if err != nil {
		t.Fatal(err)
	}
	f := expr.Gt(expr.Add(a, b), expr.Sub(a, b))
	ctx := context.Background()
	_, st1, err := sess.SolveStats(ctx, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, st2, err := sess.SolveStats(ctx, f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st1.Clauses == 0 {
		t.Fatal("first query encoded nothing")
	}
	// The second query re-asserts the cached circuit: only the activation
	// guard clause is new.
	if st2.Clauses >= st1.Clauses/2 {
		t.Errorf("second query encoded %d clauses, want far fewer than %d", st2.Clauses, st1.Clauses)
	}
	if st2.ClausesReused == 0 {
		t.Error("second query reused no clauses")
	}
	if st2.LearnedKept < 0 {
		t.Error("negative learned-kept")
	}
}

// TestSessionDecodeSubset checks model projection onto a requested
// variable subset.
func TestSessionDecodeSubset(t *testing.T) {
	u := expr.NewUniverse(2)
	a := expr.V("a", expr.IntType)
	b := expr.V("b", expr.IntType)
	sess, err := NewSession(u, []*expr.Var{a, b})
	if err != nil {
		t.Fatal(err)
	}
	as, err := sess.Assert(expr.Eq(a, expr.NewConst(expr.IntVal(u, 3))))
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := sess.SolveAssuming(context.Background(), []*Assertion{as}, []*expr.Var{a}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Sat || len(res.Model) != 1 || res.Model["a"].Int() != 3 {
		t.Fatalf("projected model = %v (status %v), want {a:3}", res.Model, res.Status)
	}
	other := expr.V("z", expr.IntType)
	if _, _, err := sess.SolveAssuming(context.Background(), []*Assertion{as}, []*expr.Var{other}, Options{}); err == nil {
		t.Fatal("decoding an undeclared variable must error")
	}
}
